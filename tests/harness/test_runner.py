"""Tests for the workload runner."""

import pytest

from repro.alloc import TCMalloc
from repro.alloc.multithread import MultiThreadAllocator
from repro.harness.runner import RunResult, run_multithreaded, run_workload
from repro.workloads.base import Op, OpKind


def ops_simple():
    return [
        Op(OpKind.MALLOC, size=64, slot=0, gap_cycles=100),
        Op(OpKind.MALLOC, size=64, slot=1, gap_cycles=50),
        Op(OpKind.FREE, size=64, slot=0, gap_cycles=25),
        Op(OpKind.FREE_SIZED, size=64, slot=1, gap_cycles=25),
    ]


class TestRunner:
    def test_records_match_ops(self):
        result = run_workload(TCMalloc(), ops_simple(), name="x")
        assert result.workload == "x"
        assert len(result.records) == 4
        kinds = [r.kind for r in result.records]
        assert kinds == ["malloc", "malloc", "free", "free"]

    def test_app_cycles_sum_gaps(self):
        result = run_workload(TCMalloc(), ops_simple())
        assert result.app_cycles == 200

    def test_warmup_excluded_from_records(self):
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0, warmup=True),
            Op(OpKind.FREE, size=64, slot=0, warmup=True),
            Op(OpKind.MALLOC, size=64, slot=1),
        ]
        result = run_workload(TCMalloc(), ops)
        assert len(result.records) == 1
        assert result.warmup_calls == 2
        assert result.warmup_cycles > 0

    def test_warmup_gaps_excluded_from_app_cycles(self):
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0, gap_cycles=1000, warmup=True),
            Op(OpKind.MALLOC, size=64, slot=1, gap_cycles=10),
        ]
        result = run_workload(TCMalloc(), ops)
        assert result.app_cycles == 10

    def test_slot_reuse_rejected(self):
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0),
            Op(OpKind.MALLOC, size=64, slot=0),
        ]
        with pytest.raises(ValueError):
            run_workload(TCMalloc(), ops)

    def test_free_of_unknown_slot_raises(self):
        """A malformed workload must surface as a ValueError naming the
        slot, not a bare KeyError from the slot-table pop."""
        with pytest.raises(ValueError, match="slot 9"):
            run_workload(TCMalloc(), [Op(OpKind.FREE, size=64, slot=9)])

    def test_sized_free_of_unknown_slot_raises(self):
        with pytest.raises(ValueError, match="slot 9"):
            run_workload(TCMalloc(), [Op(OpKind.FREE_SIZED, size=64, slot=9)])

    def test_double_free_raises(self):
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0),
            Op(OpKind.FREE, size=64, slot=0),
            Op(OpKind.FREE, size=64, slot=0),
        ]
        with pytest.raises(ValueError, match="slot 0"):
            run_workload(TCMalloc(), ops)

    def test_slot_reuse_rejected_before_allocating(self):
        """The reuse check fires before the malloc call, so the offending op
        must not leak an allocation or a record."""
        alloc = TCMalloc()
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0),
            Op(OpKind.MALLOC, size=64, slot=0),
        ]
        with pytest.raises(ValueError):
            run_workload(alloc, ops)
        assert len(alloc.live) == 1

    def test_antagonize_op_evicts(self):
        alloc = TCMalloc()
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0),
            Op(OpKind.ANTAGONIZE),
            Op(OpKind.MALLOC, size=64, slot=1),
        ]
        result = run_workload(alloc, ops)
        assert len(result.records) == 2  # antagonize is not a call

    def test_app_traffic_touches_cache(self):
        alloc = TCMalloc()
        ops = [Op(OpKind.MALLOC, size=64, slot=0, gap_cycles=10, app_lines=32)]
        run_workload(alloc, ops)
        assert alloc.machine.hierarchy.l1.resident_lines >= 32

    def test_app_traffic_can_be_disabled(self):
        alloc = TCMalloc()
        ops = [Op(OpKind.MALLOC, size=64, slot=0, gap_cycles=10, app_lines=32)]
        before_like = TCMalloc()
        run_workload(before_like, [Op(OpKind.MALLOC, size=64, slot=0)], model_app_traffic=False)
        result = run_workload(alloc, ops, model_app_traffic=False)
        assert result.records


class TestRunResultMetrics:
    def _result(self):
        return run_workload(TCMalloc(), ops_simple())

    def test_cycle_partitions(self):
        r = self._result()
        assert r.allocator_cycles == r.malloc_cycles + r.free_cycles
        assert r.total_cycles == r.allocator_cycles + r.app_cycles

    def test_allocator_fraction(self):
        r = self._result()
        assert 0 < r.allocator_fraction < 1
        assert r.allocator_fraction == pytest.approx(
            r.allocator_cycles / r.total_cycles
        )

    def test_path_counts(self):
        r = self._result()
        counts = r.path_counts()
        assert sum(counts.values()) == 4

    def test_fast_path_time_fraction_bounds(self):
        r = self._result()
        assert 0.0 <= r.fast_path_time_fraction() <= 1.0

    def test_empty_result(self):
        r = RunResult(workload="empty")
        assert r.allocator_cycles == 0
        assert r.allocator_fraction == 0.0
        assert r.fast_path_time_fraction() == 0.0

    def test_ablated_cycles_default_to_measured(self):
        r = self._result()
        assert r.ablated_allocator_cycles("nonexistent") == r.allocator_cycles


class TestMultithreadedGuards:
    """run_multithreaded must reject malformed streams exactly like
    run_workload does (it historically accepted live-slot reuse and let
    unknown-slot frees escape as bare KeyErrors)."""

    def _mt(self):
        return MultiThreadAllocator(2)

    def test_slot_reuse_rejected(self):
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0, tid=0),
            Op(OpKind.MALLOC, size=64, slot=0, tid=1),
        ]
        with pytest.raises(ValueError, match="slot 0"):
            run_multithreaded(self._mt(), ops)

    def test_free_of_unknown_slot_raises_value_error(self):
        with pytest.raises(ValueError, match="slot 3"):
            run_multithreaded(self._mt(), [Op(OpKind.FREE, size=64, slot=3, tid=0)])

    def test_sized_free_of_unknown_slot_raises_value_error(self):
        with pytest.raises(ValueError, match="slot 3"):
            run_multithreaded(
                self._mt(), [Op(OpKind.FREE_SIZED, size=64, slot=3, tid=1)]
            )

    def test_double_free_raises(self):
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0, tid=0),
            Op(OpKind.FREE, size=64, slot=0, tid=0),
            Op(OpKind.FREE, size=64, slot=0, tid=1),
        ]
        with pytest.raises(ValueError, match="slot 0"):
            run_multithreaded(self._mt(), ops)

    def test_well_formed_stream_still_runs(self):
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0, tid=0),
            Op(OpKind.MALLOC, size=128, slot=1, tid=1),
            Op(OpKind.FREE, size=64, slot=0, tid=0),
            Op(OpKind.FREE_SIZED, size=128, slot=1, tid=1),
        ]
        result = run_multithreaded(self._mt(), ops, name="mt")
        assert len(result.records) == 4


class TestWarmupAccounting:
    """RunResult must partition warmup and measured work exactly: warmup
    calls/cycles accumulate in warmup_* and never leak into records or
    app_cycles, regardless of how the two phases interleave."""

    def _warmup_pair(self, slot):
        return [
            Op(OpKind.MALLOC, size=64, slot=slot, warmup=True),
            Op(OpKind.FREE, size=64, slot=slot, warmup=True),
        ]

    def test_warmup_cycles_match_sum_of_warmup_calls(self):
        """Replay the same stream with warmup flags off to recover the
        per-call costs the warmup run hid, and check the sums agree."""
        base = [
            Op(OpKind.MALLOC, size=64, slot=0),
            Op(OpKind.FREE, size=64, slot=0),
            Op(OpKind.MALLOC, size=256, slot=1),
        ]
        flagged = [
            Op(o.kind, size=o.size, slot=o.slot, warmup=(i < 2))
            for i, o in enumerate(base)
        ]
        all_measured = run_workload(TCMalloc(), base)
        mixed = run_workload(TCMalloc(), flagged)
        assert mixed.warmup_calls == 2
        assert mixed.warmup_cycles == sum(
            r.cycles for r in all_measured.records[:2]
        )
        assert [r.cycles for r in mixed.records] == [
            r.cycles for r in all_measured.records[2:]
        ]

    def test_interleaved_warmup_and_measured(self):
        """Warmup ops scattered *between* measured ops (not just a prefix)
        are still excluded from records and app_cycles."""
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0, gap_cycles=500, warmup=True),
            Op(OpKind.MALLOC, size=64, slot=1, gap_cycles=10),
            Op(OpKind.FREE, size=64, slot=0, gap_cycles=700, warmup=True),
            Op(OpKind.MALLOC, size=64, slot=2, gap_cycles=20),
            Op(OpKind.FREE, size=64, slot=1, gap_cycles=900, warmup=True),
            Op(OpKind.FREE, size=64, slot=2, gap_cycles=30),
        ]
        result = run_workload(TCMalloc(), ops)
        assert result.warmup_calls == 3
        assert result.warmup_cycles > 0
        assert len(result.records) == 3
        assert [r.kind for r in result.records] == ["malloc", "malloc", "free"]
        assert result.app_cycles == 60  # warmup gaps (500+700+900) excluded

    def test_warmup_total_partition(self):
        """warmup_cycles + allocator_cycles covers every call made."""
        ops = self._warmup_pair(0) + [
            Op(OpKind.MALLOC, size=64, slot=1),
            Op(OpKind.FREE, size=64, slot=1),
        ]
        alloc = TCMalloc()
        result = run_workload(alloc, ops)
        assert result.warmup_calls + len(result.records) == 4
        assert result.warmup_cycles > 0
        assert result.allocator_cycles > 0

    def test_all_warmup_stream_yields_empty_result(self):
        result = run_workload(TCMalloc(), self._warmup_pair(0))
        assert result.records == []
        assert result.warmup_calls == 2
        assert result.allocator_cycles == 0
        assert result.allocator_fraction == 0.0

    def test_multithreaded_warmup_excluded(self):
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0, tid=0, warmup=True),
            Op(OpKind.MALLOC, size=64, slot=1, tid=1),
            Op(OpKind.FREE, size=64, slot=0, tid=0, warmup=True),
            Op(OpKind.FREE, size=64, slot=1, tid=1),
        ]
        result = run_multithreaded(MultiThreadAllocator(2), ops)
        assert len(result.records) == 2
        assert set(result.per_thread_cycles) == {1}


class TestMultithreadRunnerParity:
    """run_multithreaded must account warmup, app gaps, and app traffic
    exactly like run_workload — it historically dropped all three."""

    def _warmup_stream(self):
        return [
            Op(OpKind.MALLOC, size=64, slot=0, tid=0, gap_cycles=500, warmup=True),
            Op(OpKind.MALLOC, size=64, slot=1, tid=1, gap_cycles=10),
            Op(OpKind.FREE, size=64, slot=0, tid=0, gap_cycles=700, warmup=True),
            Op(OpKind.MALLOC, size=64, slot=2, tid=0, gap_cycles=20),
            Op(OpKind.FREE, size=64, slot=1, tid=1, gap_cycles=30),
            Op(OpKind.FREE, size=64, slot=2, tid=0),
        ]

    def test_warmup_calls_and_cycles_accounted(self):
        result = run_multithreaded(MultiThreadAllocator(2), self._warmup_stream())
        assert result.warmup_calls == 2
        assert result.warmup_cycles > 0
        assert len(result.records) == 4

    def test_warmup_gaps_excluded_from_app_cycles(self):
        result = run_multithreaded(MultiThreadAllocator(2), self._warmup_stream())
        assert result.app_cycles == 60  # 500 + 700 warmup gaps excluded
        assert result.total_cycles == result.allocator_cycles + 60

    def test_per_thread_cycles_exclude_warmup(self):
        result = run_multithreaded(MultiThreadAllocator(2), self._warmup_stream())
        measured_t0 = sum(
            r.cycles for op, r in zip(
                [o for o in self._warmup_stream() if not o.warmup],
                result.records,
            ) if op.tid == 0
        )
        assert result.per_thread_cycles[0] == measured_t0

    def test_allocator_stats_separate_warmup(self):
        """MultiThreadAllocator.stats[tid] must not mix warmup cycles into
        the measured totals (parity with RunResult's partition)."""
        mt = MultiThreadAllocator(2)
        result = run_multithreaded(mt, self._warmup_stream())
        assert mt.stats[0].warmup_calls == 2
        assert mt.stats[0].warmup_cycles == result.warmup_cycles
        assert mt.stats[0].cycles + mt.stats[1].cycles == result.allocator_cycles
        assert mt.stats[0].cycles == result.per_thread_cycles[0]
        assert mt.stats[1].warmup_calls == 0

    def test_app_traffic_touches_issuing_cores_cache(self):
        mt = MultiThreadAllocator(2, coherent=True)
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0, tid=1, gap_cycles=10, app_lines=32),
            Op(OpKind.FREE, size=64, slot=0, tid=1),
        ]
        run_multithreaded(mt, ops)
        assert mt.core_machines[1].hierarchy.l1.resident_lines >= 32

    def test_app_traffic_can_be_disabled(self):
        ops = [Op(OpKind.MALLOC, size=64, slot=0, tid=0, app_lines=256)]
        modeled, unmodeled = MultiThreadAllocator(2), MultiThreadAllocator(2)
        run_multithreaded(modeled, list(ops))
        run_multithreaded(unmodeled, list(ops), model_app_traffic=False)
        # The 256-line app stream only lands when modeling is on.
        assert (
            unmodeled.machine.hierarchy.l1.resident_lines
            < modeled.machine.hierarchy.l1.resident_lines
        )


class TestMultithreadAntagonize:
    """An ANTAGONIZE op must evict every core's private caches and the
    shared L3 exactly once — not just core 0's hierarchy."""

    def _prefill(self, mt, lines=2048):
        base = 0x0000_6000_0000_0000
        for machine in {id(m): m for m in mt.core_machines}.values():
            machine.hierarchy.touch_lines(base, lines)

    def test_coherent_mode_evicts_all_cores_and_shared_l3(self):
        mt = MultiThreadAllocator(3, coherent=True)
        self._prefill(mt)
        # Pile 12 lines into ONE shared-L3 set (8 MB / 16-way / 64 B lines
        # -> 8192 sets, so the set stride is 8192 * 64 bytes); the L3
        # half-eviction must drop the LRU half of that set.
        l3_set_stride = 8192 * 64
        deep = [0x0000_6100_0000_0000 + i * l3_set_stride for i in range(12)]
        for addr in deep:
            mt.core_machines[0].hierarchy.access(addr)
        assert all(mt.substrate.l3.contains(a) for a in deep)
        l1_before = [m.hierarchy.l1.resident_lines for m in mt.core_machines]
        assert all(n > 0 for n in l1_before)

        ops = [
            Op(OpKind.MALLOC, size=64, slot=0, tid=0),
            Op(OpKind.ANTAGONIZE),
            Op(OpKind.FREE, size=64, slot=0, tid=0),
        ]
        result = run_multithreaded(mt, ops)
        assert len(result.records) == 2
        for before, machine in zip(l1_before, mt.core_machines):
            assert machine.hierarchy.l1.resident_lines < before
        assert sum(mt.substrate.l3.contains(a) for a in deep) <= 6

    def test_flat_mode_matches_single_threaded_semantics(self):
        """Flat mode has one hierarchy: antagonize hits its L1/L2 once and
        leaves the (private) L3 alone, as run_workload does."""
        mt = MultiThreadAllocator(2)
        self._prefill(mt)
        l3_before = mt.machine.hierarchy.l3.resident_lines
        l1_before = mt.machine.hierarchy.l1.resident_lines
        evicted = mt.antagonize()
        assert evicted > 0
        assert mt.machine.hierarchy.l1.resident_lines < l1_before
        assert mt.machine.hierarchy.l3.resident_lines == l3_before

    def test_antagonize_counts_each_core_once(self):
        """Flat mode aliases N thread views onto one hierarchy — the
        machine-wide antagonize evicts exactly what a single direct
        hierarchy antagonize would, never once per view."""
        mt = MultiThreadAllocator(4)  # one shared machine
        twin = MultiThreadAllocator(4)
        self._prefill(mt)
        self._prefill(twin)
        assert mt.antagonize() == twin.machine.hierarchy.antagonize()

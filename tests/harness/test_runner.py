"""Tests for the workload runner."""

import pytest

from repro.alloc import TCMalloc
from repro.harness.runner import RunResult, run_workload
from repro.workloads.base import Op, OpKind


def ops_simple():
    return [
        Op(OpKind.MALLOC, size=64, slot=0, gap_cycles=100),
        Op(OpKind.MALLOC, size=64, slot=1, gap_cycles=50),
        Op(OpKind.FREE, size=64, slot=0, gap_cycles=25),
        Op(OpKind.FREE_SIZED, size=64, slot=1, gap_cycles=25),
    ]


class TestRunner:
    def test_records_match_ops(self):
        result = run_workload(TCMalloc(), ops_simple(), name="x")
        assert result.workload == "x"
        assert len(result.records) == 4
        kinds = [r.kind for r in result.records]
        assert kinds == ["malloc", "malloc", "free", "free"]

    def test_app_cycles_sum_gaps(self):
        result = run_workload(TCMalloc(), ops_simple())
        assert result.app_cycles == 200

    def test_warmup_excluded_from_records(self):
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0, warmup=True),
            Op(OpKind.FREE, size=64, slot=0, warmup=True),
            Op(OpKind.MALLOC, size=64, slot=1),
        ]
        result = run_workload(TCMalloc(), ops)
        assert len(result.records) == 1
        assert result.warmup_calls == 2
        assert result.warmup_cycles > 0

    def test_warmup_gaps_excluded_from_app_cycles(self):
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0, gap_cycles=1000, warmup=True),
            Op(OpKind.MALLOC, size=64, slot=1, gap_cycles=10),
        ]
        result = run_workload(TCMalloc(), ops)
        assert result.app_cycles == 10

    def test_slot_reuse_rejected(self):
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0),
            Op(OpKind.MALLOC, size=64, slot=0),
        ]
        with pytest.raises(ValueError):
            run_workload(TCMalloc(), ops)

    def test_free_of_unknown_slot_raises(self):
        with pytest.raises(KeyError):
            run_workload(TCMalloc(), [Op(OpKind.FREE, size=64, slot=9)])

    def test_antagonize_op_evicts(self):
        alloc = TCMalloc()
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0),
            Op(OpKind.ANTAGONIZE),
            Op(OpKind.MALLOC, size=64, slot=1),
        ]
        result = run_workload(alloc, ops)
        assert len(result.records) == 2  # antagonize is not a call

    def test_app_traffic_touches_cache(self):
        alloc = TCMalloc()
        ops = [Op(OpKind.MALLOC, size=64, slot=0, gap_cycles=10, app_lines=32)]
        run_workload(alloc, ops)
        assert alloc.machine.hierarchy.l1.resident_lines >= 32

    def test_app_traffic_can_be_disabled(self):
        alloc = TCMalloc()
        ops = [Op(OpKind.MALLOC, size=64, slot=0, gap_cycles=10, app_lines=32)]
        before_like = TCMalloc()
        run_workload(before_like, [Op(OpKind.MALLOC, size=64, slot=0)], model_app_traffic=False)
        result = run_workload(alloc, ops, model_app_traffic=False)
        assert result.records


class TestRunResultMetrics:
    def _result(self):
        return run_workload(TCMalloc(), ops_simple())

    def test_cycle_partitions(self):
        r = self._result()
        assert r.allocator_cycles == r.malloc_cycles + r.free_cycles
        assert r.total_cycles == r.allocator_cycles + r.app_cycles

    def test_allocator_fraction(self):
        r = self._result()
        assert 0 < r.allocator_fraction < 1
        assert r.allocator_fraction == pytest.approx(
            r.allocator_cycles / r.total_cycles
        )

    def test_path_counts(self):
        r = self._result()
        counts = r.path_counts()
        assert sum(counts.values()) == 4

    def test_fast_path_time_fraction_bounds(self):
        r = self._result()
        assert 0.0 <= r.fast_path_time_fraction() <= 1.0

    def test_empty_result(self):
        r = RunResult(workload="empty")
        assert r.allocator_cycles == 0
        assert r.allocator_fraction == 0.0
        assert r.fast_path_time_fraction() == 0.0

    def test_ablated_cycles_default_to_measured(self):
        r = self._result()
        assert r.ablated_allocator_cycles("nonexistent") == r.allocator_cycles

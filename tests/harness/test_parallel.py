"""Unit tests for the parallel experiment harness (in-process paths).

Worker-pool behaviour (real processes, broken pools, byte-identity against
the serial path) lives in ``tests/integration/test_parallel_differential.py``;
these tests cover the deterministic machinery: cell identity, seeding,
checkpoints, retry/backoff, quarantine, and the progress stream.
"""

import json
from dataclasses import replace

import pytest

from repro.harness.parallel import (
    MAX_BATCH_CELLS,
    CellResult,
    SweepCell,
    auto_batch_size,
    build_matrix,
    checkpoint_path,
    derive_seed,
    load_checkpoint,
    matrix_figure_data,
    matrix_to_json,
    plan_batches,
    run_matrix,
    write_checkpoint,
    write_checkpoints,
)


def fake_result(cell: SweepCell, marker: float = 1.0) -> CellResult:
    return CellResult(
        cell_id=cell.cell_id,
        workload=cell.workload,
        cache_entries=cell.cache_entries,
        num_ops=cell.num_ops,
        seed=cell.seed,
        summary={"malloc_improvement": marker, "trace_cache_hits": 9,
                 "trace_cache_misses": 1},
    )


CELLS = [
    SweepCell(workload="w0", cache_entries=8, num_ops=10, seed=3),
    SweepCell(workload="w1", cache_entries=8, num_ops=10, seed=4),
    SweepCell(workload="w1", cache_entries=32, num_ops=10, seed=4),
]


class TestCells:
    def test_cell_id_is_stable_and_unique(self):
        ids = [c.cell_id for c in CELLS]
        assert len(set(ids)) == 3
        assert CELLS[0].cell_id == "w0-e8-n10-s3"

    def test_cell_id_marks_disabled_app_traffic(self):
        cell = replace(CELLS[0], model_app_traffic=False)
        assert cell.cell_id.endswith("-noapp")
        assert cell.cell_id != CELLS[0].cell_id

    def test_derive_seed_deterministic_and_hash_free(self):
        """Same inputs, same seed — across processes too (crc32, not
        hash(), so PYTHONHASHSEED cannot perturb shard assignment)."""
        assert derive_seed(1, "xapian.abstracts") == derive_seed(1, "xapian.abstracts")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")
        assert 0 <= derive_seed(123, "tp") < 2**31 - 1

    def test_build_matrix_shares_stream_across_sizes(self):
        """Cache-size sweep points of one workload replay the identical op
        stream (same seed), the Figure 17 methodology."""
        cells = build_matrix(["tp", "gauss"], cache_sizes=(2, 32), num_ops=50)
        by_workload = {}
        for c in cells:
            by_workload.setdefault(c.workload, set()).add(c.seed)
        assert all(len(seeds) == 1 for seeds in by_workload.values())
        assert len(cells) == 4

    def test_build_matrix_canonical_order(self):
        cells = build_matrix(["b", "a"], cache_sizes=(32, 2), num_ops=5)
        assert [(c.workload, c.cache_entries) for c in cells] == [
            ("b", 32), ("b", 2), ("a", 32), ("a", 2)
        ]

    def test_legacy_seed_mode(self):
        cells = build_matrix(["a", "b"], num_ops=5, base_seed=7, per_task_seeds=False)
        assert {c.seed for c in cells} == {7}


class TestCheckpoints:
    def test_roundtrip(self, tmp_path):
        cell = CELLS[0]
        result = fake_result(cell, marker=42.0)
        path = write_checkpoint(tmp_path, cell, result)
        assert path == checkpoint_path(tmp_path, cell)
        loaded = load_checkpoint(tmp_path, cell)
        assert loaded == result

    def test_missing_returns_none(self, tmp_path):
        assert load_checkpoint(tmp_path, CELLS[0]) is None

    def test_corrupt_file_returns_none(self, tmp_path):
        cell = CELLS[0]
        checkpoint_path(tmp_path, cell).write_text("{truncated")
        assert load_checkpoint(tmp_path, cell) is None

    def test_stale_cell_definition_rejected(self, tmp_path):
        """A checkpoint written for a different cell definition (e.g. an
        older matrix with other op counts) must not be resumed."""
        cell = CELLS[0]
        write_checkpoint(tmp_path, cell, fake_result(cell))
        changed = replace(cell, num_ops=999)
        # Same workload/entries/seed would collide on the id only if the
        # op count matched; force the collision by renaming the file.
        checkpoint_path(tmp_path, cell).rename(checkpoint_path(tmp_path, changed))
        assert load_checkpoint(tmp_path, changed) is None

    def test_no_temp_litter(self, tmp_path):
        write_checkpoint(tmp_path, CELLS[0], fake_result(CELLS[0]))
        assert [p.name for p in tmp_path.iterdir()] == [
            f"{CELLS[0].cell_id}.json"
        ]


class TestBatchPlanning:
    def test_auto_size_one_wave_per_worker(self):
        assert auto_batch_size(8, 4) == 2
        assert auto_batch_size(9, 4) == 3
        assert auto_batch_size(3, 4) == 1

    def test_auto_size_capped(self):
        assert auto_batch_size(1000, 2) == MAX_BATCH_CELLS

    def test_auto_size_serial_and_empty(self):
        assert auto_batch_size(10, 1) == 1
        assert auto_batch_size(0, 4) == 1

    def test_batches_group_by_workload_family(self):
        """Locality: a batch never mixes workload families (its cells share
        one op stream), and matrix order is preserved within a family."""
        cells = build_matrix(["tp", "gauss"], cache_sizes=(2, 8, 32), num_ops=10)
        batches = plan_batches(cells, jobs=2, batch_size=2)
        assert all(len({c.workload for c in batch}) == 1 for batch in batches)
        flat = [c.cell_id for batch in batches for c in batch]
        assert sorted(flat) == sorted(c.cell_id for c in cells)
        for batch in batches:
            entries = [c.cache_entries for c in batch]
            assert entries == sorted(entries, key=[2, 8, 32].index)

    def test_batch_size_one_is_per_cell(self):
        cells = build_matrix(["tp", "gauss"], cache_sizes=(2, 32), num_ops=10)
        batches = plan_batches(cells, jobs=2, batch_size=1)
        assert [len(b) for b in batches] == [1, 1, 1, 1]

    def test_auto_plan_covers_all_cells(self):
        cells = build_matrix(["tp", "gauss", "tp_small"], cache_sizes=(2, 32), num_ops=10)
        batches = plan_batches(cells, jobs=4)
        assert sum(len(b) for b in batches) == len(cells)
        assert all(1 <= len(b) <= auto_batch_size(len(cells), 4) for b in batches)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            plan_batches(CELLS, jobs=2, batch_size=0)


class TestGroupCommit:
    def test_write_checkpoints_commits_all(self, tmp_path):
        pairs = [(c, fake_result(c)) for c in CELLS]
        targets = write_checkpoints(tmp_path, pairs)
        assert targets == [checkpoint_path(tmp_path, c) for c in CELLS]
        for cell, result in pairs:
            assert load_checkpoint(tmp_path, cell) == result
        assert not [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]

    def test_batched_files_identical_to_singles(self, tmp_path):
        """Group commit writes the same per-cell bytes as the one-at-a-time
        path — batched and unbatched checkpoint dirs interchange freely."""
        single_dir, group_dir = tmp_path / "single", tmp_path / "group"
        pairs = [(c, fake_result(c)) for c in CELLS]
        for cell, result in pairs:
            write_checkpoint(single_dir, cell, result)
        write_checkpoints(group_dir, pairs)
        for cell in CELLS:
            assert (
                checkpoint_path(single_dir, cell).read_bytes()
                == checkpoint_path(group_dir, cell).read_bytes()
            )


class TestRunMatrixInProcess:
    def test_completes_all_cells_in_canonical_order(self):
        result = run_matrix(CELLS, jobs=1, cell_fn=fake_result)
        assert list(result.results) == [c.cell_id for c in CELLS]
        assert result.quarantined == {}
        assert result.stats.cells_done == 3
        assert result.stats.cells_total == 3

    def test_pooled_trace_cache_stats(self):
        result = run_matrix(CELLS, jobs=1, cell_fn=fake_result)
        assert result.stats.trace_cache["hits"] == 27.0
        assert result.stats.trace_cache["hit_rate"] == pytest.approx(0.9)

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_matrix([CELLS[0], CELLS[0]], jobs=1, cell_fn=fake_result)

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_matrix(CELLS, jobs=1, resume=True, cell_fn=fake_result)

    def test_checkpoints_written_per_cell(self, tmp_path):
        run_matrix(CELLS, jobs=1, checkpoint_dir=tmp_path, cell_fn=fake_result)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == sorted(f"{c.cell_id}.json" for c in CELLS)

    def test_resume_skips_completed_cells(self, tmp_path):
        run_matrix(CELLS, jobs=1, checkpoint_dir=tmp_path, cell_fn=fake_result)
        checkpoint_path(tmp_path, CELLS[1]).unlink()

        calls = []

        def counting(cell):
            calls.append(cell.cell_id)
            return fake_result(cell)

        resumed = run_matrix(
            CELLS, jobs=1, checkpoint_dir=tmp_path, resume=True, cell_fn=counting
        )
        assert calls == [CELLS[1].cell_id]
        assert resumed.stats.cells_resumed == 2
        assert resumed.stats.cells_done == 1
        assert list(resumed.results) == [c.cell_id for c in CELLS]

    def test_retry_recovers_transient_failure(self):
        attempts = {}

        def flaky(cell):
            attempts[cell.cell_id] = attempts.get(cell.cell_id, 0) + 1
            if cell.workload == "w0" and attempts[cell.cell_id] == 1:
                raise RuntimeError("transient")
            return fake_result(cell)

        result = run_matrix(
            CELLS, jobs=1, max_retries=2, backoff_seconds=0.0, cell_fn=flaky
        )
        assert result.quarantined == {}
        assert result.stats.cells_done == 3
        assert result.stats.cells_failed == 1
        assert result.stats.cells_retried == 1
        assert attempts[CELLS[0].cell_id] == 2

    def test_poisoned_cell_quarantined_not_dropped(self):
        def poisoned(cell):
            if cell.workload == "w0":
                raise ValueError("poison")
            return fake_result(cell)

        events = []
        result = run_matrix(
            CELLS, jobs=1, max_retries=1, backoff_seconds=0.0,
            cell_fn=poisoned, progress=events.append,
        )
        assert list(result.quarantined) == [CELLS[0].cell_id]
        assert "poison" in result.quarantined[CELLS[0].cell_id]
        assert result.stats.cells_quarantined == 1
        assert result.stats.cells_failed == 2  # initial attempt + 1 retry
        assert len(result.results) == 2  # survivors still complete
        kinds = [e["event"] for e in events]
        assert "cell_quarantined" in kinds

    def test_progress_stream_structure(self):
        events = []
        run_matrix(CELLS, jobs=1, cell_fn=fake_result, progress=events.append)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "summary"
        assert kinds.count("cell_done") == 3
        summary = events[-1]
        assert summary["done"] == 3
        assert summary["quarantined"] == 0
        assert "trace_cache_hit_rate" in summary
        done = [e for e in events if e["event"] == "cell_done"]
        assert all("wall_seconds" in e for e in done)
        assert [e["done"] for e in done] == [1, 2, 3]


class TestFigureData:
    def test_payload_excludes_wall_time(self):
        result = run_matrix(CELLS, jobs=1, cell_fn=fake_result)
        payload = matrix_figure_data(result)
        assert "wall_seconds" not in json.dumps(payload)
        assert [c["cell_id"] for c in payload["cells"]] == [c.cell_id for c in CELLS]

    def test_serialization_is_stable(self):
        a = run_matrix(CELLS, jobs=1, cell_fn=fake_result)
        b = run_matrix(list(reversed(CELLS)), jobs=1, cell_fn=fake_result)
        # Same cells, same bytes — input order is canonical, so compare the
        # same order; a reversed matrix reverses the payload accordingly.
        assert matrix_to_json(a) == matrix_to_json(
            run_matrix(CELLS, jobs=1, cell_fn=fake_result)
        )
        assert matrix_to_json(a) != matrix_to_json(b)

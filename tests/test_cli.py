"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    main(list(argv))
    return capsys.readouterr().out


class TestCli:
    def test_list(self, capsys):
        out = run_cli(capsys, "list")
        assert "tp_small" in out
        assert "xapian.pages" in out

    def test_run_micro(self, capsys):
        out = run_cli(capsys, "run", "tp_small", "--ops", "400")
        assert "malloc speedup" in out
        assert "limit" in out

    def test_run_macro(self, capsys):
        out = run_cli(capsys, "run", "xapian.abstracts", "--ops", "600")
        assert "allocator fraction" in out

    def test_run_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "nonsense"])

    def test_sweep(self, capsys):
        out = run_cli(capsys, "sweep", "tp_small", "--sizes", "2,8", "--ops", "300")
        assert "entries" in out and "malloc speedup %" in out

    def test_breakdown(self, capsys):
        out = run_cli(capsys, "breakdown", "tp_small", "--ops", "400")
        assert "- combined" in out

    def test_breakdown_rejects_macro(self):
        with pytest.raises(SystemExit):
            main(["breakdown", "400.perlbench"])

    def test_area(self, capsys):
        out = run_cli(capsys, "area", "--entries", "16")
        assert "1484" in out and "0.0056%" in out

    def test_validate(self, capsys):
        out = run_cli(capsys, "validate", "--ops", "400")
        assert "Average" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_record_and_run(self, capsys, tmp_path):
        trace = tmp_path / "tp.trace"
        out = run_cli(capsys, "trace-record", "tp_small", "--out", str(trace), "--ops", "300")
        assert "wrote" in out and trace.exists()
        out = run_cli(capsys, "trace-run", str(trace), "--entries", "16")
        assert "malloc speedup" in out

    def test_profile(self, capsys):
        out = run_cli(capsys, "profile", "tp_small", "--ops", "400")
        assert "replay" in out and "schedule" in out
        assert "intern_hit_rate" in out

    def test_profile_json(self, capsys):
        import json

        out = run_cli(capsys, "profile", "tp_small", "--ops", "300", "--json")
        payload = json.loads(out)
        assert set(payload["stages"]) >= {"replay", "emission", "build", "schedule"}
        assert payload["counters"]["calls"] > 0

    def test_run_no_intern(self, capsys):
        out = run_cli(capsys, "run", "tp_small", "--ops", "300", "--no-intern")
        assert "disabled" in out

    def test_report(self, capsys, tmp_path):
        out_file = tmp_path / "results.md"
        out = run_cli(capsys, "report", "--out", str(out_file), "--ops", "400")
        assert "report written" in out
        text = out_file.read_text()
        assert "# Mallacc reproduction report" in text
        assert "geomean" in text
        assert "Figure 17" in text
        assert "Open-loop traffic" in text
        assert "Throughput vs offered load" in text

    def test_traffic(self, capsys):
        out = run_cli(
            capsys, "traffic", "xapian.abstracts", "--arrival", "poisson",
            "--rps", "100", "--duration", "0.4", "--cores", "2", "--seed", "7",
        )
        assert "allocation latency" in out
        assert "p99.9" in out
        assert "quantile improvement" in out
        assert "baseline" in out and "mallacc" in out

    def test_traffic_all_arrivals_json(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "traffic.json"
        out = run_cli(
            capsys, "traffic", "xapian.abstracts", "--arrival", "all",
            "--rps", "80", "--duration", "0.3", "--cores", "2", "--seed", "3",
            "--json", str(out_file),
        )
        assert "traffic payload written" in out
        payload = json.loads(out_file.read_text())
        assert payload["schema"] == "repro.traffic/v1"
        assert sorted(payload["arrivals"]) == ["bursty", "diurnal", "poisson"]

    def test_traffic_load_curve(self, capsys):
        out = run_cli(
            capsys, "traffic", "gauss", "--arrival", "poisson",
            "--rps", "80", "--duration", "0.3", "--cores", "2", "--seed", "3",
            "--load-curve", "0.4,0.9",
        )
        assert "throughput vs offered load" in out
        assert "capacity" in out

    def test_traffic_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            main(["traffic", "nonsense"])

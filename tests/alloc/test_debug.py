"""Tests for the debugging allocator."""

import pytest

from repro.alloc.constants import AllocatorConfig
from repro.alloc.debug import CANARY, POISON, DebugAllocator, HeapCorruptionError


@pytest.fixture
def dbg():
    return DebugAllocator(config=AllocatorConfig(release_rate=0))


class TestCanaries:
    def test_clean_roundtrip(self, dbg):
        ptr, _ = dbg.malloc(64)
        dbg.free(ptr)
        assert dbg.frees_checked == 1
        assert dbg.corruptions_detected == 0

    def test_canaries_planted(self, dbg):
        ptr, _ = dbg.malloc(64)
        assert dbg.machine.memory.read_word(ptr - 8) == CANARY
        tail = ptr + ((64 + 7) & ~7)
        assert dbg.machine.memory.read_word(tail) == CANARY

    def test_trailing_overwrite_detected(self, dbg):
        ptr, _ = dbg.malloc(64)
        # Application writes one word past the end.
        dbg.machine.memory.write_word(ptr + 64, 0x41414141)
        with pytest.raises(HeapCorruptionError, match="trailing"):
            dbg.free(ptr)
        assert dbg.corruptions_detected == 1

    def test_leading_overwrite_detected(self, dbg):
        ptr, _ = dbg.malloc(64)
        dbg.machine.memory.write_word(ptr - 8, 0)
        with pytest.raises(HeapCorruptionError, match="leading"):
            dbg.free(ptr)

    def test_in_bounds_writes_fine(self, dbg):
        ptr, _ = dbg.malloc(64)
        for off in range(0, 64, 8):
            dbg.machine.memory.write_word(ptr + off, 0x5555)
        dbg.free(ptr)  # no exception

    def test_unaligned_size_canary_placement(self, dbg):
        ptr, _ = dbg.malloc(60)
        dbg.machine.memory.write_word(ptr + 56, 0x77)  # last in-bounds word
        dbg.free(ptr)

    def test_sized_free_also_checks(self, dbg):
        ptr, _ = dbg.malloc(64)
        dbg.machine.memory.write_word(ptr + 64, 1)
        with pytest.raises(HeapCorruptionError):
            dbg.sized_free(ptr, 64)

    def test_checks_cost_cycles(self):
        plain = DebugAllocator(config=AllocatorConfig(release_rate=0))
        from repro.alloc import TCMalloc

        stock = TCMalloc(config=AllocatorConfig(release_rate=0))
        for _ in range(30):
            p, _ = plain.malloc(64)
            plain.free(p)
            q, _ = stock.malloc(64)
            stock.free(q)
        _, debug_rec = plain.malloc(64)
        _, stock_rec = stock.malloc(64)
        assert debug_rec.cycles > stock_rec.cycles  # redzones aren't free


class TestForensics:
    def test_double_free_message(self, dbg):
        ptr, _ = dbg.malloc(64)
        dbg.free(ptr)
        with pytest.raises(ValueError, match="unallocated"):
            dbg.free(ptr)

    def test_free_fill_poisons(self, dbg):
        ptr, _ = dbg.malloc(64)
        dbg.free(ptr)
        # Reading through the stale pointer shows poison or a list link,
        # never the old payload.
        word = dbg.machine.memory.read_word(ptr)
        assert word != 0x5555

    def test_leak_report_orders_by_age(self, dbg):
        a, _ = dbg.malloc(32)
        b, _ = dbg.malloc(64)
        c, _ = dbg.malloc(128)
        dbg.free(b)
        report = dbg.leak_report()
        assert [r.ptr for r in report] == [a, c]
        assert report[0].allocated_at <= report[1].allocated_at
        assert dbg.leaked_bytes() == 32 + 128

    def test_no_leaks_when_all_freed(self, dbg):
        ptrs = [dbg.malloc(48)[0] for _ in range(10)]
        for p in ptrs:
            dbg.free(p)
        assert dbg.leak_report() == []
        assert dbg.leaked_bytes() == 0

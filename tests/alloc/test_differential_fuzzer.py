"""Cross-allocator differential fuzzer.

Hypothesis generates seeded, shrinkable malloc/free/realloc op streams and
replays each stream against every allocator in the repository — TCMalloc,
Jemalloc, Hoard, and the buddy allocator — checking the universal heap
invariants after every step:

* **no double-free acceptance**: freeing a dead or never-allocated pointer
  must raise, never corrupt;
* **no overlapping live allocations**: every returned block ``[ptr, ptr +
  granted)`` is disjoint from all live blocks;
* **size-class containment**: the granted block size covers the request;
* **accounting consistency**: free-list lengths match the blocks actually
  reachable through simulated memory (``check_conservation`` /
  ``check_invariants``), and a full drain leaves zero live bytes.

The *differential* claim is that all four allocators agree on the
functional outcome of every op — any stream one accepts, all accept."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.allocator import TCMalloc
from repro.alloc.buddy import BuddyAllocator
from repro.alloc.hoard import HoardAllocator
from repro.alloc.jemalloc import Jemalloc

import pytest

#: A pointer no allocator ever hands out: unaligned and below every arena.
BOGUS_PTR = 0x3

MAX_FUZZ_SIZE = 3500  # within Hoard's 4 KB block ceiling (smallest limit)


# -- uniform adapters --------------------------------------------------------
class _TCMallocFamily:
    """TCMalloc and Jemalloc share the full TCMalloc surface."""

    def __init__(self, alloc: TCMalloc) -> None:
        self.alloc = alloc

    def malloc(self, size: int) -> int:
        ptr, _ = self.alloc.malloc(size)
        return ptr

    def free(self, ptr: int) -> None:
        self.alloc.free(ptr)

    def realloc(self, ptr: int, new_size: int) -> int:
        new_ptr, _ = self.alloc.realloc(ptr, new_size)
        return new_ptr

    def granted(self, size: int) -> int:
        table = self.alloc.table
        return table.alloc_size_of(table.size_class_of(size))

    def final_check(self) -> None:
        self.alloc.check_conservation()
        # Free-list length accounting: the mirrored Python length must match
        # the chain actually reachable through simulated memory.
        for cl in range(1, self.alloc.table.num_classes):
            flist = self.alloc.thread_cache.lists[cl]
            reachable = list(flist.iter_blocks())
            assert len(reachable) == flist.length, (
                f"class {cl}: {len(reachable)} reachable, "
                f"accounting says {flist.length}"
            )
            assert set(reachable) == flist._contents

    @property
    def live_count(self) -> int:
        return len(self.alloc.live)


class _HoardAdapter:
    def __init__(self) -> None:
        self.alloc = HoardAllocator()

    def malloc(self, size: int) -> int:
        ptr, _ = self.alloc.malloc(size)
        return ptr

    def free(self, ptr: int) -> None:
        self.alloc.free(ptr)

    def realloc(self, ptr: int, new_size: int) -> int:
        new_ptr = self.malloc(new_size)  # move-style realloc
        self.free(ptr)
        return new_ptr

    def granted(self, size: int) -> int:
        return self.alloc.block_size_of(self.alloc.class_of(size))

    def final_check(self) -> None:
        self.alloc.check_invariants()

    @property
    def live_count(self) -> int:
        return len(self.alloc.live)


class _BuddyAdapter:
    def __init__(self) -> None:
        self.alloc = BuddyAllocator()

    def malloc(self, size: int) -> int:
        ptr, _ = self.alloc.malloc(size)
        return ptr

    def free(self, ptr: int) -> None:
        self.alloc.free(ptr)

    def realloc(self, ptr: int, new_size: int) -> int:
        new_ptr = self.malloc(new_size)
        self.free(ptr)
        return new_ptr

    def granted(self, size: int) -> int:
        return 1 << BuddyAllocator.order_for(size)

    def final_check(self) -> None:
        self.alloc.check_invariants()

    @property
    def live_count(self) -> int:
        return len(self.alloc.live)


def _adapters():
    return {
        "tcmalloc": _TCMallocFamily(TCMalloc()),
        "jemalloc": _TCMallocFamily(Jemalloc()),
        "hoard": _HoardAdapter(),
        "buddy": _BuddyAdapter(),
    }


# -- the replay driver -------------------------------------------------------
class _Driver:
    """Replays one abstract op stream on one adapter, holding the
    invariants; tracks live intervals independently of the allocator's own
    bookkeeping so the two can disagree loudly."""

    def __init__(self, adapter) -> None:
        self.adapter = adapter
        self.blocks: dict[int, int] = {}  # ptr -> granted bytes
        self.order: list[int] = []  # allocation order, for index-stable picks
        self.outcomes: list[str] = []

    def _note_alloc(self, ptr: int, size: int) -> None:
        granted = self.adapter.granted(size)
        assert granted >= size, f"granted {granted} < requested {size}"
        for other, span in self.blocks.items():
            assert ptr + granted <= other or other + span <= ptr, (
                f"[{ptr:#x}, +{granted}) overlaps live [{other:#x}, +{span})"
            )
        self.blocks[ptr] = granted
        self.order.append(ptr)

    def _drop(self, ptr: int) -> None:
        del self.blocks[ptr]
        self.order.remove(ptr)

    def _pick(self, index: int) -> int:
        return self.order[index % len(self.order)]

    def step(self, op) -> None:
        kind, index, size = op
        if kind == "malloc" or not self.order:
            self._note_alloc(self.adapter.malloc(size), size)
            self.outcomes.append("malloc")
        elif kind == "free":
            self.adapter.free(self._pick_and_drop(index))
            self.outcomes.append("free")
        elif kind == "realloc":
            old = self._pick(index)
            new_ptr = self.adapter.realloc(old, size)
            if new_ptr != old:
                self._drop(old)
                self._note_alloc(new_ptr, size)
            else:
                # In-place realloc: same block, so the granted size must
                # already cover the new request.
                assert self.blocks[old] >= self.adapter.granted(size) >= size
                self._drop(old)
                self._note_alloc(old, size)
            self.outcomes.append("realloc")
        else:  # double_free probe
            ptr = self._pick_and_drop(index)
            self.adapter.free(ptr)
            with pytest.raises(ValueError):
                self.adapter.free(ptr)
            self.outcomes.append("double_free_rejected")

    def _pick_and_drop(self, index: int) -> int:
        ptr = self._pick(index)
        self._drop(ptr)
        return ptr

    def drain(self) -> None:
        for ptr in list(self.order):
            self._drop(ptr)
            self.adapter.free(ptr)
        assert self.adapter.live_count == 0
        assert not self.blocks


op_strategy = st.tuples(
    st.sampled_from(["malloc", "malloc", "malloc", "free", "realloc", "double_free"]),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=MAX_FUZZ_SIZE),
)
stream_strategy = st.lists(op_strategy, min_size=1, max_size=40)


class TestDifferentialFuzzer:
    @settings(max_examples=20, deadline=None)
    @given(stream_strategy)
    def test_all_allocators_hold_invariants(self, stream):
        drivers = {name: _Driver(adapter) for name, adapter in _adapters().items()}
        for op in stream:
            for driver in drivers.values():
                driver.step(op)
        # Differential agreement: every allocator saw the same functional
        # outcome for every op.
        outcomes = {name: d.outcomes for name, d in drivers.items()}
        first = next(iter(outcomes.values()))
        assert all(o == first for o in outcomes.values()), outcomes
        for name, driver in drivers.items():
            driver.drain()
            driver.adapter.final_check()

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=MAX_FUZZ_SIZE),
                    min_size=1, max_size=20))
    def test_free_of_unknown_pointer_rejected_everywhere(self, sizes):
        for name, adapter in _adapters().items():
            ptrs = [adapter.malloc(size) for size in sizes]
            with pytest.raises(ValueError):
                adapter.free(BOGUS_PTR)
            # The failed free must not have corrupted anything.
            for ptr in ptrs:
                adapter.free(ptr)
            adapter.final_check()

    def test_sized_free_mismatch_guard(self):
        """TCMalloc-family extra: sized delete with a wrong size hint that
        maps to a different class is rejected (heap-corruption guard)."""
        for alloc in (TCMalloc(), Jemalloc()):
            ptr, _ = alloc.malloc(24)
            with pytest.raises((ValueError, AssertionError)):
                alloc.sized_free(ptr, 3000)

"""Tests for the page heap."""

import pytest

from repro.alloc.constants import AllocatorConfig, K_MIN_SYSTEM_ALLOC_PAGES
from repro.alloc.context import Machine
from repro.alloc.page_heap import PageHeap
from repro.alloc.span import SpanState
from repro.sim.uop import Tag, UopKind


@pytest.fixture
def machine():
    return Machine()


@pytest.fixture
def heap(machine):
    # Disable OS release so tests see pure split/coalesce behaviour.
    return PageHeap(machine.address_space, AllocatorConfig(release_rate=0))


class TestAllocate:
    def test_first_allocation_grows_heap(self, heap, machine):
        em = machine.new_emitter()
        span = heap.allocate_span(em, 1)
        assert span.num_pages == 1
        assert span.state is SpanState.IN_USE
        assert heap.stats.system_allocations == 1
        # The growth emitted a syscall-cost uop.
        assert any(u.kind is UopKind.FIXED and u.latency >= 1000 for u in em.build())

    def test_growth_requests_minimum_batch(self, heap, machine):
        heap.allocate_span(machine.new_emitter(), 1)
        assert heap.stats.bytes_from_system == K_MIN_SYSTEM_ALLOC_PAGES * 8192

    def test_split_leaves_remainder_free(self, heap, machine):
        heap.allocate_span(machine.new_emitter(), 1)
        assert heap.free_pages() == K_MIN_SYSTEM_ALLOC_PAGES - 1

    def test_second_allocation_reuses_leftover(self, heap, machine):
        heap.allocate_span(machine.new_emitter(), 1)
        heap.allocate_span(machine.new_emitter(), 2)
        assert heap.stats.system_allocations == 1

    def test_spans_disjoint(self, heap, machine):
        spans = [heap.allocate_span(machine.new_emitter(), 2) for _ in range(5)]
        pages = set()
        for s in spans:
            for p in range(s.start_page, s.end_page):
                assert p not in pages
                pages.add(p)

    def test_large_request_grows_enough(self, heap, machine):
        span = heap.allocate_span(machine.new_emitter(), K_MIN_SYSTEM_ALLOC_PAGES * 2)
        assert span.num_pages == K_MIN_SYSTEM_ALLOC_PAGES * 2

    def test_invalid_request(self, heap, machine):
        with pytest.raises(ValueError):
            heap.allocate_span(machine.new_emitter(), 0)


class TestFree:
    def test_free_returns_pages(self, heap, machine):
        em = machine.new_emitter()
        span = heap.allocate_span(em, 4)
        before = heap.free_pages()
        heap.free_span(em, span)
        assert heap.free_pages() == before + 4

    def test_double_free_rejected(self, heap, machine):
        em = machine.new_emitter()
        span = heap.allocate_span(em, 1)
        heap.free_span(em, span)
        with pytest.raises(ValueError):
            heap.free_span(em, span)

    def test_coalesce_with_successor(self, heap, machine):
        em = machine.new_emitter()
        a = heap.allocate_span(em, 1)
        heap.free_span(em, a)
        # a coalesces with the big leftover span right after it.
        assert heap.stats.spans_coalesced >= 1
        assert heap.free_pages() == K_MIN_SYSTEM_ALLOC_PAGES

    def test_coalesce_both_sides(self, heap, machine):
        em = machine.new_emitter()
        a = heap.allocate_span(em, 1)
        b = heap.allocate_span(em, 1)
        c = heap.allocate_span(em, 1)
        heap.free_span(em, a)
        heap.free_span(em, c)
        heap.free_span(em, b)  # merges with both neighbours
        heap.check_invariants()
        assert heap.free_pages() == K_MIN_SYSTEM_ALLOC_PAGES

    def test_no_coalesce_across_in_use(self, heap, machine):
        em = machine.new_emitter()
        a = heap.allocate_span(em, 1)
        b = heap.allocate_span(em, 1)
        heap.free_span(em, a)
        heap.check_invariants()
        assert b.state is SpanState.IN_USE

    def test_reuse_after_free(self, heap, machine):
        em = machine.new_emitter()
        a = heap.allocate_span(em, 3)
        start = a.start_page
        heap.free_span(em, a)
        b = heap.allocate_span(em, 3)
        assert b.start_page == start  # first fit reuses the space


class TestRelease:
    def test_release_to_os(self, machine):
        heap = PageHeap(machine.address_space, AllocatorConfig(release_rate=1))
        em = machine.new_emitter()
        span = heap.allocate_span(em, 1)
        heap.free_span(em, span)  # triggers a release immediately
        assert heap.stats.spans_released == 1
        assert heap.stats.bytes_released > 0

    def test_release_forces_future_growth(self, machine):
        heap = PageHeap(machine.address_space, AllocatorConfig(release_rate=1))
        em = machine.new_emitter()
        span = heap.allocate_span(em, 1)
        heap.free_span(em, span)
        heap.allocate_span(em, K_MIN_SYSTEM_ALLOC_PAGES)
        assert heap.stats.system_allocations == 2

    def test_release_disabled(self, machine):
        heap = PageHeap(machine.address_space, AllocatorConfig(release_rate=0))
        em = machine.new_emitter()
        span = heap.allocate_span(em, 1)
        heap.free_span(em, span)
        assert heap.stats.spans_released == 0


class TestPagemap:
    def test_span_of_addr(self, heap, machine):
        span = heap.allocate_span(machine.new_emitter(), 2)
        assert heap.span_of_addr(span.start_addr) is span
        assert heap.span_of_addr(span.start_addr + span.length_bytes - 8) is span

    def test_emit_pagemap_lookup_structure(self, heap, machine):
        span = heap.allocate_span(machine.new_emitter(), 1)
        em = machine.new_emitter()
        found, uop = heap.emit_pagemap_lookup(em, span.start_addr)
        trace = em.build()
        assert found is span
        loads = [i for i, u in enumerate(trace) if u.kind is UopKind.LOAD]
        assert len(loads) == 2
        # Leaf load depends on root load (radix walk).
        assert loads[0] in trace.uops[loads[1]].deps
        assert uop == loads[1]

    def test_pagemap_lookup_tag_override(self, heap, machine):
        span = heap.allocate_span(machine.new_emitter(), 1)
        em = machine.new_emitter()
        heap.emit_pagemap_lookup(em, span.start_addr, tag=Tag.SIZE_CLASS)
        assert all(u.tag is Tag.SIZE_CLASS for u in em.build())

    def test_unknown_address(self, heap, machine):
        em = machine.new_emitter()
        found, _ = heap.emit_pagemap_lookup(em, 0x9999_0000_0000)
        assert found is None

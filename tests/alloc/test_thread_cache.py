"""Tests for the thread cache and its heuristics."""

import pytest

from repro.alloc.central_cache import CentralFreeList
from repro.alloc.constants import AllocatorConfig, K_MAX_DYNAMIC_FREE_LIST_LENGTH
from repro.alloc.context import Machine
from repro.alloc.page_heap import PageHeap
from repro.alloc.size_classes import SizeClassTable
from repro.alloc.thread_cache import ThreadCache


def build(max_cache_size=2 * 1024 * 1024):
    machine = Machine()
    config = AllocatorConfig(release_rate=0, max_thread_cache_size=max_cache_size)
    table = SizeClassTable.generate(machine.address_space)
    heap = PageHeap(machine.address_space, config)
    central = [
        CentralFreeList(c, table, heap, config) for c in range(table.num_classes)
    ]
    tc = ThreadCache(machine, table, central, config)
    return machine, table, central, tc


def lookup_uop(machine):
    """A stand-in uop the allocate/deallocate APIs can depend on."""
    em = machine.new_emitter()
    return em, em.alu()


class TestAllocate:
    def test_first_allocation_misses(self):
        machine, table, central, tc = build()
        cl = table.size_class_of(64)
        em, uop = lookup_uop(machine)
        ptr, fast = tc.allocate(em, cl, uop)
        assert not fast
        assert ptr > 0
        assert tc.stats.fetches == 1

    def test_slow_start_fetches_one_then_grows(self):
        machine, table, central, tc = build()
        cl = table.size_class_of(64)
        em, uop = lookup_uop(machine)
        tc.allocate(em, cl, uop)
        assert tc.stats.objects_fetched == 1  # max_length started at 1
        # List is now empty again; next allocate fetches 2.
        em, uop = lookup_uop(machine)
        tc.allocate(em, cl, uop)
        assert tc.stats.objects_fetched == 3

    def test_max_length_growth_beyond_batch(self):
        machine, table, central, tc = build()
        cl = table.size_class_of(64)
        flist = tc.lists[cl]
        batch = table.batch_size_of(cl)
        flist.max_length = batch  # past slow start
        em, uop = lookup_uop(machine)
        tc.allocate(em, cl, uop)
        assert flist.max_length == 2 * batch
        assert flist.max_length <= K_MAX_DYNAMIC_FREE_LIST_LENGTH

    def test_hit_after_fill(self):
        machine, table, central, tc = build()
        cl = table.size_class_of(64)
        em, uop = lookup_uop(machine)
        tc.allocate(em, cl, uop)
        em, uop = lookup_uop(machine)
        tc.allocate(em, cl, uop)  # fetch of 2, one left
        em, uop = lookup_uop(machine)
        ptr, fast = tc.allocate(em, cl, uop)
        assert fast

    def test_size_accounting(self):
        machine, table, central, tc = build()
        cl = table.size_class_of(64)
        em, uop = lookup_uop(machine)
        tc.allocate(em, cl, uop)
        # Fetched 1, allocated 1: cache holds zero bytes.
        assert tc.size_bytes == 0


class TestDeallocate:
    def test_push_is_fast(self):
        machine, table, central, tc = build()
        cl = table.size_class_of(64)
        em, uop = lookup_uop(machine)
        ptr, _ = tc.allocate(em, cl, uop)
        em, uop = lookup_uop(machine)
        assert tc.deallocate(em, cl, ptr, uop)
        assert tc.lists[cl].length == 1

    def test_list_too_long_releases_batch(self):
        machine, table, central, tc = build()
        cl = table.size_class_of(64)
        flist = tc.lists[cl]
        em, uop = lookup_uop(machine)
        ptrs = [tc.allocate(em, cl, uop)[0] for _ in range(8)]
        flist.max_length = 3
        fast = True
        for p in ptrs:
            em, uop = lookup_uop(machine)
            fast = tc.deallocate(em, cl, p, uop)
        assert tc.stats.releases >= 1
        assert not fast or flist.length <= flist.max_length

    def test_scavenge_on_cache_size(self):
        machine, table, central, tc = build(max_cache_size=512)
        cl = table.size_class_of(64)
        em, uop = lookup_uop(machine)
        ptrs = [tc.allocate(em, cl, uop)[0] for _ in range(12)]
        # Keep ListTooLong out of the way so bytes accumulate to the cap.
        tc.lists[cl].max_length = 1000
        for p in ptrs:
            em, uop = lookup_uop(machine)
            tc.deallocate(em, cl, p, uop)
        assert tc.stats.scavenges >= 1
        assert tc.size_bytes < 512

    def test_objects_return_to_central(self):
        machine, table, central, tc = build()
        cl = table.size_class_of(64)
        flist = tc.lists[cl]
        em, uop = lookup_uop(machine)
        ptrs = [tc.allocate(em, cl, uop)[0] for _ in range(6)]
        flist.max_length = 2
        before = central[cl].num_free_objects
        for p in ptrs:
            em, uop = lookup_uop(machine)
            tc.deallocate(em, cl, p, uop)
        assert central[cl].num_free_objects > before

    def test_total_objects(self):
        machine, table, central, tc = build()
        cl = table.size_class_of(32)
        em, uop = lookup_uop(machine)
        ptr, _ = tc.allocate(em, cl, uop)
        em, uop = lookup_uop(machine)
        tc.deallocate(em, cl, ptr, uop)
        assert tc.total_objects() == tc.lists[cl].length


class TestHeaderLayout:
    def test_one_cache_line_per_class(self):
        machine, table, central, tc = build()
        headers = [fl.header_addr for fl in tc.lists]
        assert all(b - a == 64 for a, b in zip(headers, headers[1:]))
        assert headers[0] % 64 == 0

"""Fused slow-path refill twins: registry discipline, fallbacks, parity.

The columnar engine fuses the refill machinery — central-cache
remove/insert (with the transfer cache and the lock/contention model),
page-heap span allocation/free (with the radix pagemap), and span carving
— into straight-line priced twins (:mod:`repro.alloc.slowpath`).  Like the
fast-path twins, the registry keys on the allocator's *exact* type, and
every guard bails to ``None`` before mutating anything: invalid arguments,
large spans mid-precheck, stale size-class cache entries, and double frees
all fall through to the reference object path with untouched state.
"""

import os
from contextlib import contextmanager

import pytest

from repro.alloc.allocator import Path, TCMalloc
from repro.alloc.constants import AllocatorConfig
from repro.alloc.debug import DebugAllocator
from repro.core.accel_allocator import MallaccTCMalloc


@contextmanager
def _engine(name):
    saved = os.environ.get("REPRO_ENGINE")
    if name is None:
        os.environ.pop("REPRO_ENGINE", None)
    else:
        os.environ["REPRO_ENGINE"] = name
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = saved


def _refill_churn(alloc, rounds=3, burst=40):
    """Bursty same-class churn plus one large-span round trip: forces
    central fetches (span carving included), overflow releases, and
    page-heap traffic.  Returns the observable record stream."""
    out = []
    for _ in range(rounds):
        live = []
        for _ in range(burst):
            ptr, rec = alloc.malloc(64)
            live.append(ptr)
            out.append(("malloc", rec.cycles, rec.path.value))
        for i, ptr in enumerate(live):
            rec = (
                alloc.sized_free(ptr, 64) if i % 2 == 0 else alloc.free(ptr)
            )
            out.append(("free", rec.cycles, rec.path.value))
    big = alloc.config.max_size + 4096
    ptr, rec = alloc.malloc(big)
    out.append(("malloc", rec.cycles, rec.path.value))
    rec = alloc.free(ptr)
    out.append(("free", rec.cycles, rec.path.value))
    return out


def _state(alloc):
    """Everything a bailing twin must leave untouched."""
    central = alloc.central_lists[0].__class__  # noqa: F841 (type anchor)
    return (
        alloc.machine.clock,
        dict(alloc.live),
        len(alloc.records),
        alloc.thread_cache.size_bytes,
        tuple(
            (c.stats.remove_calls, c.stats.insert_calls, c.stats.populates)
            for c in alloc.central_lists
        ),
        (
            alloc.page_heap.stats.spans_allocated,
            alloc.page_heap.stats.spans_freed,
        ),
    )


class TestRegistry:
    def test_exact_type_gets_a_twin(self):
        from repro.alloc.slowpath import MallaccSlowPath, TCMallocSlowPath

        with _engine(None):
            assert isinstance(TCMalloc()._slowpath, TCMallocSlowPath)
            assert isinstance(MallaccTCMalloc()._slowpath, MallaccSlowPath)

    def test_subclass_falls_back_to_object_path(self):
        """DebugAllocator overrides malloc/free emission; inheriting a
        refill twin would skip its canaries.  Exact-type lookup refuses."""
        with _engine(None):
            assert DebugAllocator()._slowpath is None

    def test_reference_engine_attaches_no_twin(self):
        with _engine("reference"):
            assert TCMalloc()._slowpath is None
            assert MallaccTCMalloc()._slowpath is None


class TestParity:
    @pytest.mark.parametrize("alloc_type", [TCMalloc, MallaccTCMalloc])
    def test_refill_records_match_reference(self, alloc_type):
        outs = {}
        for engine in (None, "reference"):
            with _engine(engine):
                outs[engine] = _refill_churn(alloc_type())
        assert outs[None] == outs["reference"]
        # The churn must actually exercise the refill paths under columnar.
        paths = {p for _, _, p in outs[None]}
        assert Path.CENTRAL.value in paths
        assert Path.PAGE_ALLOC.value in paths
        assert Path.FREE_SLOW.value in paths
        assert Path.LARGE.value in paths
        assert Path.FREE_LARGE.value in paths

    def test_sampled_allocations_fall_back_identically(self):
        """A sampled allocation is vetoed before any twin mutation; the
        object path prices it — identically on both engines, with the
        sampler advancing in lockstep."""
        outs = {}
        for engine in (None, "reference"):
            with _engine(engine):
                alloc = TCMalloc(config=AllocatorConfig(sampling_enabled=True))
                recs = []
                for _ in range(80):
                    _, rec = alloc.malloc(32768)
                    recs.append((rec.cycles, rec.path.value, rec.sampled))
                outs[engine] = (recs, alloc.sampler.bytes_until_sample)
        assert outs[None] == outs["reference"]
        assert any(sampled for _, _, sampled in outs[None][0])


class TestFallbackBeforeMutation:
    """Every bail must happen before the first mutation: a twin returning
    None leaves clock, live set, records, caches, and stats untouched."""

    def test_invalid_and_oversized_requests(self):
        with _engine(None):
            alloc = TCMalloc()
            twin = alloc._slowpath
            before = _state(alloc)
            assert twin.malloc(0) is None
            assert twin.malloc(-3) is None
            assert twin.malloc(alloc.config.max_size + 1) is None
            assert twin.free(0xDEAD0, None) is None  # not a live pointer
            assert _state(alloc) == before

    def test_fast_shape_is_not_the_twin_s_domain(self):
        """A non-empty free list (malloc) or a non-overflowing push (free)
        belongs to the fast-path twin; the refill twin must decline."""
        with _engine(None):
            alloc = TCMalloc()
            twin = alloc._slowpath
            alloc.malloc(64)
            # Slow-start: the second fetch takes two objects, so one is
            # still threaded on the list after this pop.
            ptr, _ = alloc.malloc(64)
            assert alloc.thread_cache.lists[alloc.live[ptr][1]].length > 0
            before = _state(alloc)
            assert twin.malloc(64) is None
            assert twin.free(ptr, None) is None
            assert _state(alloc) == before

    def test_double_free_bails_untouched(self):
        """A pointer already threaded on the free list: the reference path
        raises; the twin must decline without touching anything."""
        with _engine(None):
            alloc = TCMalloc()
            ptr, _ = alloc.malloc(64)
            size, cl = alloc.live[ptr]
            alloc.free(ptr)
            # Corrupt the bookkeeping the way a double free would find it:
            # live again, and the list forced into the overflow (slow) shape
            # so the twin reaches its double-free guard.
            alloc.live[ptr] = (size, cl)
            flist = alloc.thread_cache.lists[cl]
            saved_max = flist.max_length
            flist.max_length = 0
            twin = alloc._slowpath
            before = _state(alloc)
            assert ptr in flist._contents
            assert twin.free(ptr, None) is None
            assert _state(alloc) == before
            flist.max_length = saved_max

    def test_stale_size_cache_entry_vetoes(self):
        """A malloc-cache size entry that disagrees with the size-class
        table (stale/corrupt hardware state) must veto the Mallacc twin
        before it commits any stats or LRU updates."""
        with _engine(None):
            alloc = MallaccTCMalloc()
            twin = alloc._slowpath
            cache = alloc.isa.cache
            entry = cache.entries[0]
            entry.valid = True
            entry.lo = 0
            entry.hi = 1 << 30
            entry.size_class = alloc.table.size_class_of(48) + 1
            entry.alloc_size = 48
            before = _state(alloc)
            sz_before = (cache.stats.sz_hits, cache.stats.sz_misses)
            assert twin.malloc(48) is None
            assert twin.free(0xDEAD0, 48) is None  # dead ptr bails first
            assert _state(alloc) == before
            assert (cache.stats.sz_hits, cache.stats.sz_misses) == sz_before


class TestProfiler:
    @pytest.mark.parametrize("engine", [None, "reference"])
    def test_refill_stage_and_summary(self, engine):
        """Both the reference hooks and the fused twins must account their
        wall time to the profiler's ``refill`` stage, and the bridge must
        report a nonzero refill share of replay time."""
        from repro.harness.profile import HotPathProfiler
        from repro.harness.runner import run_workload
        from repro.obs.bridges import refill_summary
        from repro.obs.metrics import MetricsRegistry
        from repro.workloads import MACRO_WORKLOADS

        wl = MACRO_WORKLOADS["483.xalancbmk"]
        with _engine(engine):
            alloc = TCMalloc()
            prof = HotPathProfiler()
            run_workload(
                alloc, wl.ops(seed=7, num_ops=300), name=wl.name, profiler=prof
            )
        assert "refill" in prof.stages
        assert prof.counters["refill_entries"] > 0
        reg = MetricsRegistry()
        summary = refill_summary(prof, registry=reg, engine=engine or "columnar")
        assert summary["refill_seconds"] > 0.0
        assert summary["refill_segments"] > 0
        assert 0.0 < summary["refill_share"] < 1.0

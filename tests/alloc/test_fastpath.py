"""Fused fast-path twins: registry discipline, fallbacks, error parity.

The columnar engine replaces the emit-then-schedule fast paths with
straight-line priced twins (:mod:`repro.alloc.fastpath`).  The twin
registry keys on the allocator's *exact* type — subclasses that override
emission hooks (``DebugAllocator``) silently fall back to the object
path — and every twin guard bails to ``None`` before mutating anything,
so slow paths, invalid arguments, and forensic wrappers behave exactly
as on the reference engine.
"""

import os
from contextlib import contextmanager

import pytest

from repro.alloc.allocator import Path, TCMalloc
from repro.alloc.debug import POISON, DebugAllocator
from repro.core.accel_allocator import MallaccTCMalloc


@contextmanager
def _engine(name):
    saved = os.environ.get("REPRO_ENGINE")
    if name is None:
        os.environ.pop("REPRO_ENGINE", None)
    else:
        os.environ["REPRO_ENGINE"] = name
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = saved


class TestRegistry:
    def test_exact_type_gets_a_twin(self):
        from repro.alloc.fastpath import MallaccFastPath, TCMallocFastPath

        with _engine(None):
            assert isinstance(TCMalloc()._fastpath, TCMallocFastPath)
            assert isinstance(MallaccTCMalloc()._fastpath, MallaccFastPath)

    def test_subclass_falls_back_to_object_path(self):
        """DebugAllocator overrides malloc/free emission; inheriting the
        TCMalloc twin would skip its canaries.  Exact-type lookup refuses."""
        with _engine(None):
            assert DebugAllocator()._fastpath is None

    def test_reference_engine_attaches_no_twin(self):
        with _engine("reference"):
            assert TCMalloc()._fastpath is None
            assert MallaccTCMalloc()._fastpath is None


def _churn(alloc, sizes=(16, 48, 128, 16, 96, 16, 16)):
    """A tiny mixed malloc/free stream; returns the observable records."""
    out = []
    ptrs = []
    for size in sizes:
        ptr, record = alloc.malloc(size)
        ptrs.append((ptr, size))
        out.append(("malloc", record.cycles, record.path.value))
    for ptr, size in ptrs:
        record = alloc.sized_free(ptr, size) if size % 2 == 0 else alloc.free(ptr)
        out.append(("free", record.cycles, record.path.value))
    return out


class TestFallbacks:
    def test_slow_path_falls_through_to_object_path(self):
        """A large allocation can't be served by any thread-cache twin; the
        twin must bail and the object path must price it — identically on
        both engines."""
        outs = {}
        for engine in (None, "reference"):
            with _engine(engine):
                alloc = TCMalloc()
                big = alloc.config.max_size + 4096
                ptr, record = alloc.malloc(big)
                free_rec = alloc.free(ptr)
                outs[engine] = (
                    record.cycles, record.path.value,
                    free_rec.cycles, free_rec.path.value,
                )
                assert record.path is not Path.FAST
        assert outs[None] == outs["reference"]

    @pytest.mark.parametrize("bad_size", [0, -1])
    def test_invalid_size_raises_on_both_engines(self, bad_size):
        for engine in (None, "reference"):
            with _engine(engine):
                alloc = TCMalloc()
                with pytest.raises(ValueError):
                    alloc.malloc(bad_size)

    def test_wild_free_raises_identically(self):
        messages = {}
        for engine in (None, "reference"):
            with _engine(engine):
                alloc = TCMalloc()
                alloc.malloc(32)
                with pytest.raises(ValueError) as exc:
                    alloc.free(0xDEAD0)
                messages[engine] = str(exc.value)
        assert messages[None] == messages["reference"]

    def test_twin_records_match_reference(self):
        outs = {}
        for engine in (None, "reference"):
            with _engine(engine):
                outs[engine] = _churn(TCMalloc())
        assert outs[None] == outs["reference"]
        # The churn must actually exercise both fast paths under columnar.
        paths = {p for _, _, p in outs[None]}
        assert Path.FAST.value in paths
        assert Path.FREE_FAST.value in paths


class TestDebugForensics:
    """Reuse-after-free poisoning and canaries ride the object path on both
    engines — and the poison word is readable straight out of the arena."""

    @pytest.mark.parametrize("engine", [None, "reference"])
    def test_freed_block_is_poisoned(self, engine):
        with _engine(engine):
            alloc = DebugAllocator()
            ptr, _ = alloc.malloc(64)
            alloc.free(ptr)
            assert alloc.machine.memory.read_word(ptr) == POISON

    def test_forensics_identical_across_engines(self):
        outs = {}
        for engine in (None, "reference"):
            with _engine(engine):
                alloc = DebugAllocator()
                records = _churn(alloc, sizes=(24, 64, 24))
                outs[engine] = (records, alloc.frees_checked,
                                alloc.corruptions_detected)
        assert outs[None] == outs["reference"]

    @pytest.mark.parametrize("engine", [None, "reference"])
    def test_canary_corruption_detected(self, engine):
        from repro.alloc.debug import HeapCorruptionError

        with _engine(engine):
            alloc = DebugAllocator()
            ptr, _ = alloc.malloc(32)
            # Clobber the leading canary the way a buggy app would.
            alloc.machine.memory.write_word(ptr - 8, 0x41414141)
            with pytest.raises(HeapCorruptionError):
                alloc.free(ptr)
            assert alloc.corruptions_detected == 1

"""Tests for size-class generation and lookup."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.constants import (
    K_CLASS_ARRAY_SIZE,
    K_MAX_SIZE,
    K_MAX_SMALL_SIZE,
    K_PAGE_SIZE,
)
from repro.alloc.context import Machine
from repro.alloc.size_classes import (
    SizeClassTable,
    alignment_for_size,
    class_index,
    lg_floor,
    num_objects_to_move,
)
from repro.sim.uop import Tag, UopKind


@pytest.fixture(scope="module")
def table():
    return SizeClassTable.generate()


class TestHelpers:
    def test_lg_floor(self):
        assert lg_floor(1) == 0
        assert lg_floor(2) == 1
        assert lg_floor(1023) == 9
        assert lg_floor(1024) == 10

    def test_lg_floor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lg_floor(0)

    def test_alignment_schedule(self):
        assert alignment_for_size(8) == 8
        assert alignment_for_size(16) == 16
        assert alignment_for_size(127) == 16
        assert alignment_for_size(128) == 16
        assert alignment_for_size(256) == 32
        assert alignment_for_size(1024) == 128
        assert alignment_for_size(K_MAX_SIZE) == K_PAGE_SIZE  # capped at a page

    def test_alignment_capped_at_page(self):
        assert alignment_for_size(K_MAX_SIZE + 1) == K_PAGE_SIZE

    def test_num_objects_to_move_bounds(self):
        assert num_objects_to_move(0) == 0
        assert num_objects_to_move(8) == 32  # capped
        assert num_objects_to_move(64 * 1024) == 2  # floor
        assert num_objects_to_move(4096) == 16

    def test_class_index_formula(self):
        # Figure 5: (size+7)>>3 below 1024, (size+15487)>>7 above.
        assert class_index(8) == (8 + 7) >> 3
        assert class_index(1024) == (1024 + 7) >> 3
        assert class_index(1025) == (1025 + 15487) >> 7
        assert class_index(K_MAX_SIZE) == (K_MAX_SIZE + 15487) >> 7

    def test_class_index_range_errors(self):
        with pytest.raises(ValueError):
            class_index(-1)
        with pytest.raises(ValueError):
            class_index(K_MAX_SIZE + 1)

    def test_class_array_size_slightly_above_2100(self):
        """The paper: 'fixed at slightly above 2100 in 2007'."""
        assert 2100 < K_CLASS_ARRAY_SIZE < 2200
        assert class_index(K_MAX_SIZE) == K_CLASS_ARRAY_SIZE - 1


class TestGeneration:
    def test_class_count_near_88(self, table):
        """The paper quotes 88 size classes; our gperftools-algorithm
        regeneration lands within a few classes of that (revision drift)."""
        assert 80 <= table.num_classes <= 96

    def test_class_zero_reserved(self, table):
        assert table.class_to_size[0] == 0
        assert table.class_to_pages[0] == 0

    def test_sizes_strictly_increasing(self, table):
        sizes = table.class_to_size[1:]
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_first_and_last_class(self, table):
        assert table.class_to_size[1] == 16
        assert table.class_to_size[-1] == K_MAX_SIZE

    def test_sizes_honor_alignment(self, table):
        for size in table.class_to_size[1:]:
            assert size % alignment_for_size(size) == 0 or size < 16

    def test_span_waste_bounded(self, table):
        """Span leftover is less than 1/8 of the span (the generation
        invariant)."""
        for cl in range(1, table.num_classes):
            span_bytes = table.class_to_pages[cl] * K_PAGE_SIZE
            waste = span_bytes % table.class_to_size[cl]
            assert waste <= span_bytes >> 3

    def test_spans_hold_enough_for_transfers(self, table):
        for cl in range(1, table.num_classes):
            objects = table.objects_per_span(cl)
            assert objects >= num_objects_to_move(table.class_to_size[cl]) // 4

    def test_batch_sizes_recorded(self, table):
        for cl in range(1, table.num_classes):
            assert table.batch_size_of(cl) == num_objects_to_move(table.class_to_size[cl])


class TestLookup:
    def test_every_small_size_covered(self, table):
        for size in range(1, 2049):
            cl = table.size_class_of(size)
            assert cl > 0
            assert table.alloc_size_of(cl) >= size

    def test_rounding_is_minimal(self, table):
        """The assigned class is the smallest one that fits."""
        for size in (1, 8, 16, 17, 100, 1024, 1025, 8192, K_MAX_SIZE):
            cl = table.size_class_of(size)
            assert table.alloc_size_of(cl) >= size
            if cl > 1:
                assert table.alloc_size_of(cl - 1) < size

    def test_exact_class_sizes_map_to_themselves(self, table):
        for cl in range(1, table.num_classes):
            size = table.class_to_size[cl]
            assert table.size_class_of(size) == cl

    @given(st.integers(min_value=1, max_value=K_MAX_SIZE))
    @settings(max_examples=300, deadline=None)
    def test_property_rounding(self, size):
        table = _SHARED_TABLE
        cl = table.size_class_of(size)
        assert 0 < cl < table.num_classes
        assert table.alloc_size_of(cl) >= size
        # Fragmentation bound: TCMalloc wastes at most ~12.5% + alignment.
        if size > 16:
            assert table.alloc_size_of(cl) <= size + max(size // 4, 128)

    @given(st.integers(min_value=1, max_value=K_MAX_SMALL_SIZE - 8))
    @settings(max_examples=100, deadline=None)
    def test_property_monotone(self, size):
        table = _SHARED_TABLE
        assert table.size_class_of(size) <= table.size_class_of(size + 8)


_SHARED_TABLE = SizeClassTable.generate()


class TestTimedLookup:
    def test_emit_lookup_structure(self):
        machine = Machine()
        table = SizeClassTable.generate(machine.address_space)
        em = machine.new_emitter()
        lookup = table.emit_lookup(em, 64)
        trace = em.build()
        # Two ALU (index compute) + two dependent loads, all SIZE_CLASS.
        assert trace.count(UopKind.ALU) == 2
        assert trace.count(UopKind.LOAD) == 2
        assert all(u.tag is Tag.SIZE_CLASS for u in trace)
        assert trace.uops[lookup.size_uop].deps == (lookup.cls_uop,)
        assert lookup.size_class == table.size_class_of(64)
        assert lookup.alloc_size == table.alloc_size_of(lookup.size_class)

    def test_lookup_addresses_distinct_tables(self):
        machine = Machine()
        table = SizeClassTable.generate(machine.address_space)
        em = machine.new_emitter()
        lookup = table.emit_lookup(em, 64)
        trace = em.build()
        addrs = [u.addr for u in trace if u.kind is UopKind.LOAD]
        assert addrs[0] != addrs[1]
        assert table.class_array_addr <= addrs[0] < table.class_to_size_addr
        del lookup

"""Tests for multithreaded allocation over shared pools."""

import random

import pytest

from repro.alloc.constants import AllocatorConfig
from repro.alloc.multithread import MultiThreadAllocator


def make(n=2, accelerated=False, **cfg):
    return MultiThreadAllocator(
        n, config=AllocatorConfig(release_rate=0, **cfg), accelerated=accelerated
    )


class TestBasics:
    def test_threads_share_lower_pools(self):
        mt = make(2)
        p0, _ = mt.malloc(0, 64)
        p1, _ = mt.malloc(1, 64)
        assert p0 != p1
        assert mt.shared.page_heap.stats.system_allocations == 1  # one heap

    def test_private_thread_caches(self):
        mt = make(2)
        p, _ = mt.malloc(0, 64)
        mt.free(0, p)
        cl = mt.shared.table.size_class_of(64)
        assert mt.threads[0].thread_cache.lists[cl].length >= 1
        assert mt.threads[1].thread_cache.lists[cl].length == 0

    def test_bad_tid_rejected(self):
        mt = make(2)
        with pytest.raises(ValueError):
            mt.malloc(2, 64)
        with pytest.raises(ValueError):
            mt.malloc(-1, 64)

    def test_free_unknown_pointer(self):
        mt = make(2)
        with pytest.raises(ValueError):
            mt.free(0, 0xDEAD000)

    def test_single_thread_allowed(self):
        mt = make(1)
        p, _ = mt.malloc(0, 64)
        mt.free(0, p)
        mt.check_conservation()

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            MultiThreadAllocator(0)


class TestCrossThreadFrees:
    def test_object_lands_in_freeing_threads_cache(self):
        """TCMalloc semantics: the freeing thread's cache takes the object."""
        mt = make(2)
        p, _ = mt.malloc(0, 64)
        mt.free(1, p)
        cl = mt.shared.table.size_class_of(64)
        assert mt.threads[1].thread_cache.lists[cl].length >= 1

    def test_sized_cross_thread_free(self):
        mt = make(2)
        p, _ = mt.malloc(0, 128)
        rec = mt.sized_free(1, p, 128)
        assert rec.kind == "free"

    def test_double_free_rejected_across_threads(self):
        mt = make(2)
        p, _ = mt.malloc(0, 64)
        mt.free(1, p)
        with pytest.raises(ValueError):
            mt.free(0, p)

    def test_memory_migrates_back(self):
        """Producer/consumer: consumer's releases feed the producer via the
        central lists — the anti-blowup mechanism of Section 2."""
        mt = make(2)
        queue = []
        for _ in range(1500):
            p, _ = mt.malloc(0, 64)
            queue.append(p)
            if len(queue) > 16:
                mt.free(1, queue.pop(0))
        # Footprint stays bounded: far less than 1500 * 64 bytes churned.
        assert mt.reserved_bytes() <= 4 * 128 * 1024
        assert mt.shared.central_lists[
            mt.shared.table.size_class_of(64)
        ].stats.objects_moved_in > 0
        mt.check_conservation()


class TestContention:
    def test_interleaved_threads_contend(self):
        """Threads refilling the same class in quick succession hit the
        central lock window."""
        mt = make(4)
        rng = random.Random(3)
        live = []
        for _ in range(1200):
            tid = rng.randrange(4)
            if live and rng.random() < 0.45:
                mt.free(tid, live.pop(rng.randrange(len(live))))
            else:
                live.append(mt.malloc(tid, 64)[0])
        assert mt.contention_cycles() > 0

    def test_single_thread_never_contends(self):
        mt = make(1)
        for _ in range(300):
            p, _ = mt.malloc(0, 64)
            mt.free(0, p)
        assert mt.contention_cycles() == 0

    def test_contention_grows_with_threads(self):
        def run(n):
            mt = make(n)
            rng = random.Random(5)
            live = []
            for _ in range(1000):
                tid = rng.randrange(n)
                if live and rng.random() < 0.5:
                    mt.free(tid, live.pop(rng.randrange(len(live))))
                else:
                    live.append(mt.malloc(tid, 64)[0])
            return mt.contention_cycles()

        assert run(4) >= run(1)


class TestAcceleratedThreads:
    def test_each_context_has_own_cache(self):
        mt = make(2, accelerated=True)
        assert mt.threads[0].malloc_cache is not mt.threads[1].malloc_cache

    def test_preemption_flushes_caches(self):
        mt = MultiThreadAllocator(
            2,
            config=AllocatorConfig(release_rate=0),
            accelerated=True,
            switch_quantum_cycles=2000,
        )
        for _ in range(120):
            p, _ = mt.malloc(0, 64)
            mt.sized_free(0, p, 64)
        assert mt.context_switches >= 1
        assert mt.threads[0].malloc_cache.stats.flushes >= 1
        assert mt.threads[1].malloc_cache.stats.flushes >= 1

    def test_no_preemption_within_quantum(self):
        mt = make(2, accelerated=True)  # default quantum: 1M cycles
        for _ in range(30):
            p, _ = mt.malloc(0, 64)
            mt.free(1, p)  # tid changes are NOT context switches (own cores)
        assert mt.context_switches == 0

    def test_accelerated_matches_baseline_pointers(self):
        def run(accelerated):
            mt = make(2, accelerated=accelerated)
            rng = random.Random(9)
            live, out = [], []
            for _ in range(600):
                tid = rng.randrange(2)
                if live and rng.random() < 0.5:
                    mt.free(tid, live.pop(rng.randrange(len(live))))
                else:
                    p, _ = mt.malloc(tid, rng.choice([32, 64, 160]))
                    live.append(p)
                    out.append(p)
            return out

        assert run(False) == run(True)

    def test_accelerated_is_faster_overall(self):
        def total_cycles(accelerated):
            mt = MultiThreadAllocator(
                2,
                config=AllocatorConfig(release_rate=0),
                accelerated=accelerated,
                context_switch_flushes=False,  # pin threads to contexts
            )
            rng = random.Random(2)
            live = []
            cycles = 0
            for _ in range(1200):
                tid = rng.randrange(2)
                if live and rng.random() < 0.5:
                    cycles += mt.free(tid, live.pop(rng.randrange(len(live)))).cycles
                else:
                    p, rec = mt.malloc(tid, 64)
                    live.append(p)
                    cycles += rec.cycles
            return cycles

        base = total_cycles(False)
        accel = total_cycles(True)
        assert accel < base

    def test_preemption_boundaries_do_not_drift(self):
        """The next deadline stays pinned to whole multiples of the quantum
        — never clock + quantum from whatever instant the check fired."""
        quantum = 10_000
        mt = MultiThreadAllocator(
            2, config=AllocatorConfig(release_rate=0), switch_quantum_cycles=quantum
        )
        mt.machine.advance(quantum + 50)  # cross boundary 1, mid-quantum
        mt.malloc(0, 64)
        assert mt.context_switches == 1
        assert mt._next_preemption == 2 * quantum  # not 10_050 + quantum

    def test_each_crossed_quantum_boundary_counts(self):
        """A long application gap crossing several boundaries counts one
        context switch per boundary, not one per check."""
        quantum = 10_000
        mt = MultiThreadAllocator(
            2, config=AllocatorConfig(release_rate=0), switch_quantum_cycles=quantum
        )
        mt.machine.advance(5 * quantum + 123)  # boundaries 1..5 crossed
        mt.malloc(0, 64)
        assert mt.context_switches == 5
        assert mt._next_preemption == 6 * quantum
        mt.machine.advance(quantum)  # crosses boundary 6 exactly at 6Q+123
        mt.malloc(1, 64)
        assert mt.context_switches == 6
        assert mt._next_preemption == 7 * quantum

    def test_preemption_at_exact_boundary_fires_once(self):
        quantum = 1_000
        mt = MultiThreadAllocator(
            2, config=AllocatorConfig(release_rate=0), switch_quantum_cycles=quantum
        )
        mt.machine.clock = quantum  # exactly on the first boundary
        mt.malloc(0, 64)
        assert mt.context_switches == 1
        assert mt._next_preemption == 2 * quantum

    def test_invariants_after_multithreaded_churn(self):
        mt = make(3, accelerated=True)
        rng = random.Random(17)
        live = []
        for _ in range(900):
            tid = rng.randrange(3)
            if live and rng.random() < 0.5:
                mt.free(tid, live.pop(rng.randrange(len(live))))
            else:
                live.append(mt.malloc(tid, rng.choice([16, 64, 256]))[0])
        for view in mt.threads:
            view.malloc_cache.check_invariants(mt.machine.memory)
        mt.check_conservation()

"""Tests for the jemalloc-style allocator and Mallacc's generality."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.constants import AllocatorConfig, K_MAX_SIZE
from repro.alloc.jemalloc import (
    Jemalloc,
    JemallocSizeClassTable,
    jemalloc_size_classes,
    make_mallacc_jemalloc,
)
from repro.alloc.size_classes import SizeClassTable


class TestSizeClassSchedule:
    def test_four_classes_per_doubling(self):
        """jemalloc's signature spacing: groups of four per power of two."""
        sizes, _, _ = jemalloc_size_classes()
        assert sizes[1:9] == [8, 16, 24, 32, 40, 48, 56, 64]
        # 2^k group boundaries present throughout.
        for power in (64, 128, 256, 1024, 4096, 65536):
            assert power in sizes

    def test_spacing_within_groups(self):
        sizes, _, _ = jemalloc_size_classes()
        # Between 128 and 256 the spacing is 32: 160, 192, 224, 256.
        segment = [s for s in sizes if 128 < s <= 256]
        assert segment == [160, 192, 224, 256]

    def test_covers_small_range(self):
        table = JemallocSizeClassTable.generate()
        for size in (1, 8, 9, 100, 1000, 5000, K_MAX_SIZE):
            cl = table.size_class_of(size)
            assert table.alloc_size_of(cl) >= size

    def test_rounding_minimal(self):
        table = JemallocSizeClassTable.generate()
        for size in (20, 21, 100, 300, 4097):
            cl = table.size_class_of(size)
            if cl > 1:
                assert table.alloc_size_of(cl - 1) < size

    def test_differs_from_tcmalloc(self):
        """The two allocators genuinely disagree on rounding."""
        je = JemallocSizeClassTable.generate()
        tc = SizeClassTable.generate()
        disagreements = sum(
            1
            for size in range(8, 4096, 8)
            if je.alloc_size_of(je.size_class_of(size))
            != tc.alloc_size_of(tc.size_class_of(size))
        )
        assert disagreements > 50

    @given(st.integers(min_value=1, max_value=K_MAX_SIZE))
    @settings(max_examples=150, deadline=None)
    def test_property_rounding(self, size):
        table = _TABLE
        cl = table.size_class_of(size)
        assert table.alloc_size_of(cl) >= size
        if size > 16:
            # jemalloc's bound: waste at most 25% (spacing = group/4).
            assert table.alloc_size_of(cl) <= size + max(size // 3, 16)


_TABLE = JemallocSizeClassTable.generate()


class TestJemallocAllocator:
    def test_roundtrip(self):
        alloc = Jemalloc()
        ptr, rec = alloc.malloc(100)
        assert rec.size_class == alloc.table.size_class_of(100)
        alloc.free(ptr)
        alloc.check_conservation()

    def test_fill_quarter_discipline(self):
        """A tcache miss fills ncached_max/4 objects, not a slow-start 1."""
        alloc = Jemalloc(config=AllocatorConfig(release_rate=0))
        cl = alloc.table.size_class_of(64)
        alloc.malloc(64)
        fetched = alloc.thread_cache.stats.objects_fetched
        assert fetched == max(1, alloc.thread_cache.lists[cl].max_length // 4)
        assert fetched > 1  # unlike TCMalloc's slow start

    def test_flush_three_quarters(self):
        alloc = Jemalloc(config=AllocatorConfig(release_rate=0))
        cl = alloc.table.size_class_of(64)
        flist = alloc.thread_cache.lists[cl]
        ptrs = [alloc.malloc(64)[0] for _ in range(8)]
        flist.max_length = 4
        for p in ptrs:
            alloc.sized_free(p, 64)
        # After an overflow, roughly a quarter of the bin remains.
        assert flist.length <= 4

    def test_fast_path_cost_comparable_to_tcmalloc(self):
        alloc = Jemalloc()
        for _ in range(60):
            p, _ = alloc.malloc(64)
            alloc.sized_free(p, 64)
        _, rec = alloc.malloc(64)
        assert 15 <= rec.cycles <= 30

    def test_conservation_under_churn(self):
        alloc = Jemalloc(config=AllocatorConfig(release_rate=0))
        rng = random.Random(11)
        live = []
        for _ in range(300):
            if live and rng.random() < 0.5:
                alloc.free(live.pop(rng.randrange(len(live))))
            else:
                live.append(alloc.malloc(rng.choice([16, 24, 64, 160, 1024]))[0])
        alloc.check_conservation()


class TestMallaccGenerality:
    """The paper's claim: the same hardware accelerates other allocators."""

    def warm(self, alloc, n=60):
        for _ in range(8):
            held = [alloc.malloc(64)[0] for _ in range(4)]
            for p in held:
                alloc.sized_free(p, 64)
        for _ in range(n):
            p, _ = alloc.malloc(64)
            alloc.sized_free(p, 64)

    def test_mallacc_speeds_up_jemalloc(self):
        base, accel = Jemalloc(), make_mallacc_jemalloc()
        self.warm(base)
        self.warm(accel)
        _, rb = base.malloc(64)
        _, ra = accel.malloc(64)
        assert ra.cycles < rb.cycles
        assert (rb.cycles - ra.cycles) / rb.cycles >= 0.2

    def test_pointer_equivalence(self):
        def run(factory):
            alloc = factory()
            rng = random.Random(5)
            live, out = [], []
            for _ in range(300):
                if live and rng.random() < 0.45:
                    alloc.sized_free(*live.pop(rng.randrange(len(live))))
                else:
                    size = rng.choice([16, 24, 64, 200, 1024])
                    ptr, _ = alloc.malloc(size)
                    live.append((ptr, size))
                    out.append(ptr)
            return out

        assert run(Jemalloc) == run(make_mallacc_jemalloc)

    def test_cache_invariants_hold(self):
        accel = make_mallacc_jemalloc()
        self.warm(accel)
        accel.malloc_cache.check_invariants(accel.machine.memory)
        assert accel.malloc_cache.sz_hit_rate > 0.8

    def test_index_keying_disabled_for_foreign_allocator(self):
        """The index-keyed mode is TCMalloc-specific (its class-index
        function); raw-size mode works for jemalloc out of the box — the
        paper's configuration register."""
        from repro.core.malloc_cache import MallocCacheConfig

        accel = make_mallacc_jemalloc(cache_config=MallocCacheConfig(index_keyed=False))
        self.warm(accel)
        assert accel.malloc_cache.sz_hit_rate > 0.5
        accel.malloc_cache.check_invariants(accel.machine.memory)

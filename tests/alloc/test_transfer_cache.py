"""Tests for the transfer cache (whole-batch recycling)."""

import random

import pytest

from repro.alloc import AllocatorConfig, TCMalloc
from repro.alloc.context import Machine
from repro.alloc.transfer_cache import K_TRANSFER_SLOTS, TransferCache


@pytest.fixture
def machine():
    return Machine()


def tc(batch=4, slots=K_TRANSFER_SLOTS):
    return TransferCache(size_class=3, batch_size=batch, num_slots=slots)


def batch_of(n, base=0x1000):
    return [base + i * 64 for i in range(n)]


class TestSlots:
    def test_roundtrip_preserves_batch(self, machine):
        cache = tc()
        em = machine.new_emitter()
        original = batch_of(4)
        assert cache.try_insert(em, original)
        out = cache.try_remove(em, 4)
        assert out == original

    def test_partial_batch_rejected(self, machine):
        cache = tc(batch=4)
        em = machine.new_emitter()
        assert not cache.try_insert(em, batch_of(3))
        assert cache.parked_objects == 0

    def test_partial_request_misses(self, machine):
        cache = tc(batch=4)
        em = machine.new_emitter()
        cache.try_insert(em, batch_of(4))
        assert cache.try_remove(em, 2) is None
        assert cache.stats.remove_misses == 1

    def test_capacity_limit(self, machine):
        cache = tc(batch=2, slots=2)
        em = machine.new_emitter()
        assert cache.try_insert(em, batch_of(2, 0x1000))
        assert cache.try_insert(em, batch_of(2, 0x2000))
        assert not cache.try_insert(em, batch_of(2, 0x3000))
        assert cache.stats.insert_overflows == 1

    def test_lifo_order(self, machine):
        cache = tc(batch=2)
        em = machine.new_emitter()
        cache.try_insert(em, batch_of(2, 0x1000))
        cache.try_insert(em, batch_of(2, 0x2000))
        assert cache.try_remove(em, 2)[0] == 0x2000

    def test_empty_remove_misses(self, machine):
        cache = tc()
        assert cache.try_remove(machine.new_emitter(), 4) is None

    def test_drain(self, machine):
        cache = tc(batch=2)
        em = machine.new_emitter()
        cache.try_insert(em, batch_of(2, 0x1000))
        cache.try_insert(em, batch_of(2, 0x2000))
        drained = cache.drain()
        assert len(drained) == 2
        assert cache.parked_objects == 0


class TestIntegration:
    def test_batches_recycle_through_transfer_cache(self):
        """Once slow start has grown max_length past the batch size (the
        steady state of a busy process), overflow releases park whole
        batches and later fetches reuse them without touching spans."""
        alloc = TCMalloc(config=AllocatorConfig(release_rate=0))
        cl = alloc.table.size_class_of(64)
        batch = alloc.table.batch_size_of(cl)
        flist = alloc.thread_cache.lists[cl]

        held = [alloc.malloc(64)[0] for _ in range(batch + 8)]
        flist.max_length = batch  # steady-state bound, past slow start
        for p in held:
            alloc.sized_free(p, 64)  # overflows release one full batch
        stats = alloc.central_lists[cl].transfer.stats
        assert stats.batch_inserts >= 1

        # Drain the thread list, then force a full-batch fetch: it must be
        # served from the parked batch.
        for _ in range(flist.length):
            alloc.malloc(64)
        alloc.malloc(64)
        assert stats.batch_removes >= 1
        alloc.check_conservation()

    def test_transfer_hit_cheaper_than_span_walk(self):
        """A batch fetch served from the transfer cache skips the
        per-object span pops."""
        alloc = TCMalloc(config=AllocatorConfig(release_rate=0))
        cl = alloc.table.size_class_of(64)
        batch = alloc.table.batch_size_of(cl)
        central = alloc.central_lists[cl]

        em = alloc.machine.new_emitter()
        taken = central.remove_range(em, batch)  # from a fresh span
        span_uops = len(em.build())

        em2 = alloc.machine.new_emitter()
        central.insert_range(em2, taken)  # parks the batch
        em3 = alloc.machine.new_emitter()
        again = central.remove_range(em3, batch)
        transfer_uops = len(em3.build())
        assert again == taken
        assert transfer_uops < span_uops / 3

    def test_no_object_duplication(self):
        alloc = TCMalloc(config=AllocatorConfig(release_rate=0))
        cl = alloc.table.size_class_of(64)
        batch = alloc.table.batch_size_of(cl)
        central = alloc.central_lists[cl]
        em = alloc.machine.new_emitter()
        taken = central.remove_range(em, batch)
        central.insert_range(em, taken)
        a = central.remove_range(em, batch)
        b = central.remove_range(em, batch)
        assert not set(a) & set(b)

"""Tests for the MallocExtension-style heap statistics."""

import random

import pytest

from repro.alloc import AllocatorConfig, TCMalloc
from repro.alloc.introspection import collect_stats, render_stats


@pytest.fixture
def alloc():
    return TCMalloc(config=AllocatorConfig(release_rate=0))


class TestCollect:
    def test_empty_allocator(self, alloc):
        stats = collect_stats(alloc)
        assert stats.in_use_by_app == 0
        assert stats.heap_size == 0
        assert stats.consistent()

    def test_live_bytes_counted_rounded(self, alloc):
        alloc.malloc(60)  # rounds to the 64-byte class
        stats = collect_stats(alloc)
        assert stats.in_use_by_app == 64

    def test_freed_bytes_move_to_thread_cache(self, alloc):
        p, _ = alloc.malloc(64)
        alloc.sized_free(p, 64)
        stats = collect_stats(alloc)
        assert stats.in_use_by_app == 0
        assert stats.thread_cache_bytes >= 64

    def test_central_and_page_heap_accounted(self, alloc):
        alloc.malloc(64)  # carves a span; the rest sits in central + page heap
        stats = collect_stats(alloc)
        assert stats.central_cache_bytes > 0
        assert stats.page_heap_free_bytes > 0
        assert stats.consistent()

    def test_large_allocations(self, alloc):
        alloc.malloc(512 * 1024)
        stats = collect_stats(alloc)
        assert stats.in_use_by_app >= 512 * 1024

    def test_released_bytes_tracked(self):
        alloc = TCMalloc(config=AllocatorConfig(release_rate=1))
        p, _ = alloc.malloc(512 * 1024)
        alloc.free(p)
        stats = collect_stats(alloc)
        assert stats.released_to_os_bytes > 0
        assert stats.heap_size < stats.reserved_from_os_bytes

    def test_conservation_under_churn(self, alloc):
        rng = random.Random(5)
        live = []
        for _ in range(500):
            if live and rng.random() < 0.5:
                alloc.free(live.pop(rng.randrange(len(live))))
            else:
                live.append(alloc.malloc(rng.choice([16, 64, 256, 2048]))[0])
        stats = collect_stats(alloc)
        assert stats.consistent()
        # Everything the OS gave us is in exactly one pool (± span slack).
        accounted = stats.in_use_by_app + stats.cached_bytes
        assert accounted >= stats.heap_size * 0.85


class TestRender:
    def test_classic_format(self, alloc):
        alloc.malloc(1000)
        text = render_stats(collect_stats(alloc))
        assert "MALLOC:" in text
        assert "Bytes in use by application" in text
        assert "MiB" in text
        assert text.count("\n") >= 9

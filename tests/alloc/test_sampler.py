"""Tests for the software byte-countdown sampler."""

import pytest

from repro.alloc.constants import AllocatorConfig
from repro.alloc.context import Machine
from repro.alloc.sampler import Sampler
from repro.sim.uop import Tag, UopKind


@pytest.fixture
def machine():
    return Machine()


def make(machine, period=1024, enabled=True):
    return Sampler(machine, AllocatorConfig(sample_parameter=period, sampling_enabled=enabled))


class TestCheck:
    def test_emits_countdown_work(self, machine):
        s = make(machine)
        em = machine.new_emitter()
        s.emit_check(em, 64)
        trace = em.build()
        assert trace.count(UopKind.LOAD) == 1
        assert trace.count(UopKind.BRANCH) == 1
        assert trace.count(UopKind.STORE) == 1
        assert all(u.tag is Tag.SAMPLING for u in trace)

    def test_triggers_at_threshold(self, machine):
        s = make(machine, period=128)
        em = machine.new_emitter()
        assert not s.emit_check(em, 64)
        assert s.emit_check(em, 64)

    def test_disabled_emits_nothing(self, machine):
        s = make(machine, enabled=False)
        em = machine.new_emitter()
        assert not s.emit_check(em, 10**9)
        assert len(em.build()) == 0

    def test_large_request_samples_immediately(self, machine):
        s = make(machine, period=100)
        em = machine.new_emitter()
        assert s.emit_check(em, 4096)


class TestRecord:
    def test_record_captures_and_resets(self, machine):
        s = make(machine, period=128)
        em = machine.new_emitter()
        s.emit_check(em, 200)
        s.record_sample(em, 200)
        assert s.num_samples == 1
        assert s.samples[0].size == 200
        assert s.bytes_until_sample == 128

    def test_record_costs_stack_trace(self, machine):
        s = make(machine)
        em = machine.new_emitter()
        s.record_sample(em, 64)
        fixed = [u for u in em.build() if u.kind is UopKind.FIXED]
        assert fixed and fixed[0].latency >= 100

    def test_sampling_rate_approximates_period(self, machine):
        s = make(machine, period=1000)
        em = machine.new_emitter()
        samples = 0
        for _ in range(100):
            if s.emit_check(em, 100):
                s.record_sample(em, 100)
                samples += 1
        assert samples == 10

"""Tests for spans and the span set."""

import pytest

from repro.alloc.constants import K_PAGE_SIZE
from repro.alloc.span import Span, SpanSet, SpanState


class TestSpan:
    def test_geometry(self):
        s = Span(start_page=10, num_pages=4)
        assert s.start_addr == 10 * K_PAGE_SIZE
        assert s.length_bytes == 4 * K_PAGE_SIZE
        assert s.end_page == 14

    def test_contains_page(self):
        s = Span(start_page=10, num_pages=4)
        assert s.contains_page(10) and s.contains_page(13)
        assert not s.contains_page(9) and not s.contains_page(14)

    def test_split(self):
        s = Span(start_page=10, num_pages=4)
        rest = s.split(1)
        assert s.num_pages == 1 and s.start_page == 10
        assert rest.start_page == 11 and rest.num_pages == 3

    def test_split_bounds(self):
        s = Span(start_page=0, num_pages=2)
        with pytest.raises(ValueError):
            s.split(0)
        with pytest.raises(ValueError):
            s.split(2)

    def test_default_state_free(self):
        assert Span(0, 1).state is SpanState.ON_NORMAL_FREELIST


class TestSpanSet:
    def test_register_boundaries(self):
        ss = SpanSet()
        s = Span(start_page=10, num_pages=4)
        ss.register(s)
        assert ss.span_of_page(10) is s
        assert ss.span_of_page(13) is s
        assert ss.span_of_page(11) is None  # interior unmapped by default

    def test_register_interior_maps_every_page(self):
        ss = SpanSet()
        s = Span(start_page=10, num_pages=4)
        ss.register(s)
        ss.register_interior(s)
        assert all(ss.span_of_page(p) is s for p in range(10, 14))

    def test_unregister(self):
        ss = SpanSet()
        s = Span(start_page=10, num_pages=2)
        ss.register(s)
        ss.register_interior(s)
        ss.unregister(s)
        assert ss.span_of_page(10) is None
        assert s not in ss.spans

    def test_unregister_preserves_other_spans(self):
        ss = SpanSet()
        a = Span(start_page=0, num_pages=2)
        b = Span(start_page=2, num_pages=2)
        ss.register(a)
        ss.register(b)
        ss.unregister(a)
        assert ss.span_of_page(2) is b
        assert ss.span_of_page(3) is b

    def test_single_page_span(self):
        ss = SpanSet()
        s = Span(start_page=5, num_pages=1)
        ss.register(s)
        assert ss.span_of_page(5) is s

"""Tests for the TCMalloc facade."""

import pytest

from repro.alloc import AllocatorConfig, Path, TCMalloc
from repro.sim.uop import LIMIT_STUDY_TAGS, Tag


@pytest.fixture
def alloc():
    return TCMalloc(config=AllocatorConfig(release_rate=0))


class TestMallocBasics:
    def test_returns_pointer_and_record(self, alloc):
        ptr, rec = alloc.malloc(64)
        assert ptr > 0
        assert rec.kind == "malloc" and rec.size == 64
        assert rec.cycles > 0 and rec.num_uops > 0

    def test_pointers_unique(self, alloc):
        ptrs = [alloc.malloc(48)[0] for _ in range(50)]
        assert len(set(ptrs)) == 50

    def test_pointers_disjoint(self, alloc):
        ptrs = sorted(alloc.malloc(64)[0] for _ in range(20))
        rounded = alloc.table.alloc_size_of(alloc.table.size_class_of(64))
        assert all(b - a >= rounded for a, b in zip(ptrs, ptrs[1:]))

    def test_pointer_in_reserved_heap(self, alloc):
        ptr, _ = alloc.malloc(64)
        assert alloc.machine.address_space.owns_heap_address(ptr)

    def test_alignment(self, alloc):
        for size in (1, 7, 8, 9, 16, 100, 1000):
            ptr, _ = alloc.malloc(size)
            assert ptr % 8 == 0

    def test_invalid_size(self, alloc):
        with pytest.raises(ValueError):
            alloc.malloc(0)
        with pytest.raises(ValueError):
            alloc.malloc(-1)

    def test_live_tracking(self, alloc):
        ptr, _ = alloc.malloc(100)
        assert alloc.live[ptr] == (100, alloc.table.size_class_of(100))
        assert alloc.live_bytes == 100


class TestPaths:
    def test_first_call_goes_to_page_allocator(self, alloc):
        _, rec = alloc.malloc(64)
        assert rec.path is Path.PAGE_ALLOC

    def test_warm_call_is_fast(self, alloc):
        for _ in range(4):
            p, _ = alloc.malloc(64)
            alloc.sized_free(p, 64)
        _, rec = alloc.malloc(64)
        assert rec.path is Path.FAST

    def test_central_path_between(self, alloc):
        alloc.malloc(64)
        _, rec = alloc.malloc(64)  # span already carved, list empty
        assert rec.path is Path.CENTRAL

    def test_large_allocation_bypasses_caches(self, alloc):
        ptr, rec = alloc.malloc(512 * 1024)
        assert rec.path is Path.LARGE
        assert rec.size_class == 0
        assert ptr % alloc.config.page_size == 0

    def test_path_cost_ordering(self, alloc):
        """Figure 1: fast << central << page allocator."""
        _, page_rec = alloc.malloc(64)
        _, central_rec = alloc.malloc(64)
        for _ in range(4):
            p, _ = alloc.malloc(64)
            alloc.sized_free(p, 64)
        _, fast_rec = alloc.malloc(64)
        assert fast_rec.cycles < central_rec.cycles < page_rec.cycles
        assert central_rec.cycles >= 5 * fast_rec.cycles


class TestFree:
    def test_free_roundtrip(self, alloc):
        ptr, _ = alloc.malloc(64)
        rec = alloc.free(ptr)
        assert rec.kind == "free"
        assert ptr not in alloc.live

    def test_sized_free_cheaper_than_plain(self, alloc):
        for _ in range(8):
            p, _ = alloc.malloc(64)
            alloc.sized_free(p, 64)
        p1, _ = alloc.malloc(64)
        p2, _ = alloc.malloc(64)
        plain = alloc.free(p1)
        sized = alloc.sized_free(p2, 64)
        assert sized.cycles <= plain.cycles

    def test_free_unknown_pointer_raises(self, alloc):
        with pytest.raises(ValueError):
            alloc.free(0x1234567890)

    def test_double_free_raises(self, alloc):
        ptr, _ = alloc.malloc(64)
        alloc.free(ptr)
        with pytest.raises(ValueError):
            alloc.free(ptr)

    def test_sized_free_wrong_size_same_class_ok(self, alloc):
        ptr, _ = alloc.malloc(60)
        rec = alloc.sized_free(ptr, 58)  # same class
        assert rec.path in (Path.FREE_FAST, Path.FREE_SLOW)

    def test_free_large_returns_span(self, alloc):
        ptr, _ = alloc.malloc(512 * 1024)
        rec = alloc.free(ptr)
        assert rec.path is Path.FREE_LARGE
        before = alloc.page_heap.free_pages()
        assert before > 0

    def test_memory_reused_after_free(self, alloc):
        ptr, _ = alloc.malloc(64)
        alloc.sized_free(ptr, 64)
        ptr2, _ = alloc.malloc(64)
        assert ptr2 == ptr  # LIFO reuse from the thread cache


class TestClockAndRecords:
    def test_clock_advances_per_call(self, alloc):
        t0 = alloc.machine.clock
        _, rec = alloc.malloc(64)
        assert alloc.machine.clock == t0 + rec.cycles
        assert rec.clock == t0

    def test_records_kept(self, alloc):
        alloc.malloc(64)
        p, _ = alloc.malloc(32)
        alloc.free(p)
        assert len(alloc.records) == 3

    def test_keep_records_off(self, alloc):
        alloc.keep_records = False
        alloc.malloc(64)
        assert alloc.records == []

    def test_is_fast_path_property(self, alloc):
        for _ in range(4):
            p, _ = alloc.malloc(64)
            alloc.sized_free(p, 64)
        _, rec = alloc.malloc(64)
        assert rec.is_fast_path and rec.is_malloc


class TestAblations:
    def test_limit_ablation_recorded(self):
        alloc = TCMalloc(ablations={"limit": LIMIT_STUDY_TAGS})
        for _ in range(6):
            p, _ = alloc.malloc(64)
            alloc.sized_free(p, 64)
        _, rec = alloc.malloc(64)
        assert rec.ablated["limit"] < rec.cycles

    def test_fastpath_limit_is_half(self):
        """The paper: the three components are ~50% of fast-path cycles."""
        alloc = TCMalloc(ablations={"limit": LIMIT_STUDY_TAGS})
        for _ in range(30):
            p, _ = alloc.malloc(64)
            alloc.sized_free(p, 64)
        _, rec = alloc.malloc(64)
        assert rec.path is Path.FAST
        saving = (rec.cycles - rec.ablated["limit"]) / rec.cycles
        assert 0.3 <= saving <= 0.7

    def test_multiple_ablations(self):
        alloc = TCMalloc(
            ablations={
                "sc": frozenset({Tag.SIZE_CLASS}),
                "pp": frozenset({Tag.PUSH_POP}),
            }
        )
        _, rec = alloc.malloc(64)
        assert set(rec.ablated) == {"sc", "pp"}


class TestSampling:
    def test_sampled_allocations_recorded(self):
        alloc = TCMalloc(config=AllocatorConfig(sample_parameter=4096))
        for _ in range(100):
            alloc.malloc(128)
        assert alloc.sampler.num_samples >= 2

    def test_sampled_call_is_slower(self):
        alloc = TCMalloc(config=AllocatorConfig(sample_parameter=1 << 20))
        for _ in range(8):
            p, _ = alloc.malloc(64)
            alloc.sized_free(p, 64)
        normal = alloc.malloc(64)[1]
        alloc.sampler.bytes_until_sample = 1
        sampled_ptr, sampled = alloc.malloc(64)
        assert sampled.sampled and not normal.sampled
        assert sampled.cycles > normal.cycles


class TestConservation:
    def test_check_passes_after_churn(self, alloc):
        import random

        rng = random.Random(7)
        live = []
        for _ in range(300):
            if live and rng.random() < 0.5:
                alloc.free(live.pop(rng.randrange(len(live))))
            else:
                live.append(alloc.malloc(rng.choice([16, 32, 64, 128, 1024]))[0])
        alloc.check_conservation()

    def test_live_bytes_decreases_on_free(self, alloc):
        p, _ = alloc.malloc(100)
        alloc.malloc(50)
        alloc.free(p)
        assert alloc.live_bytes == 50

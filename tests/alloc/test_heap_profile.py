"""Tests for heap-profile reconstruction from samples."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc import AllocatorConfig, TCMalloc
from repro.alloc.heap_profile import build_profile, fidelity
from repro.alloc.sampler import SampleRecord
from repro.core import MallaccTCMalloc


def samples_of(sizes):
    return [SampleRecord(size=s, clock=i) for i, s in enumerate(sizes)]


class TestProfile:
    def test_weighting_debiases_small_objects(self):
        """A sampled 64 B allocation under a 64 KB period represents ~1024
        allocations; its weight must reflect that."""
        profile = build_profile(samples_of([64]), period=64 * 1024)
        assert profile.estimated_bytes_by_size[64] == pytest.approx(64 * 1024)

    def test_large_objects_weighted_once(self):
        profile = build_profile(samples_of([128 * 1024]), period=64 * 1024)
        assert profile.estimated_bytes_by_size[128 * 1024] == pytest.approx(128 * 1024)

    def test_total_and_top_sizes(self):
        profile = build_profile(samples_of([64, 64, 1024]), period=1024)
        top = profile.top_sizes(1)
        assert top[0][0] in (64, 1024)
        assert profile.estimated_total_bytes > 0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            build_profile([], period=0)

    def test_empty_samples(self):
        assert build_profile([], period=1024).estimated_total_bytes == 0.0


class TestFidelity:
    def _run(self, cls, period=32 * 1024, n=4000, seed=5):
        alloc = cls(config=AllocatorConfig(sample_parameter=period, release_rate=0))
        rng = random.Random(seed)
        total = 0
        for _ in range(n):
            size = rng.choice([16, 64, 256, 1024])
            alloc.malloc(size)
            total += size
        samples = alloc.pmu.samples if isinstance(alloc, MallaccTCMalloc) else alloc.sampler.samples
        return fidelity(samples, period, total)

    def test_software_sampler_accurate(self):
        report = self._run(TCMalloc)
        assert report.samples > 10
        assert report.relative_error < 0.35

    def test_pmu_sampler_accurate(self):
        report = self._run(MallaccTCMalloc)
        assert report.samples > 10
        assert report.relative_error < 0.35

    def test_pmu_matches_software_rate(self):
        sw = self._run(TCMalloc)
        pmu = self._run(MallaccTCMalloc)
        assert abs(sw.samples - pmu.samples) <= max(3, sw.samples // 2)

    def test_zero_truth(self):
        report = fidelity([], 1024, 0)
        assert report.relative_error == 0.0

    @given(st.lists(st.sampled_from([32, 128, 512, 2048]), min_size=50, max_size=300))
    @settings(max_examples=15, deadline=None)
    def test_property_estimate_unbiased_order(self, sizes):
        """The estimate lands within a small factor of the truth for any
        mix, given enough samples."""
        period = 2048
        alloc = TCMalloc(config=AllocatorConfig(sample_parameter=period, release_rate=0))
        total = 0
        for size in sizes:
            alloc.malloc(size)
            total += size
        report = fidelity(alloc.sampler.samples, period, total)
        if report.samples >= 10:
            assert report.relative_error < 0.8

"""Tests for the buddy allocator baseline and fragmentation accounting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc import TCMalloc
from repro.alloc.buddy import MAX_ORDER, MIN_ORDER, BuddyAllocator
from repro.alloc.constants import AllocatorConfig
from repro.alloc.fragmentation import (
    internal_fragmentation_of_table,
    measure,
)
from repro.alloc.size_classes import SizeClassTable


class TestBuddyBasics:
    def test_order_mapping(self):
        assert BuddyAllocator.order_for(1) == MIN_ORDER
        assert BuddyAllocator.order_for(16) == MIN_ORDER
        assert BuddyAllocator.order_for(17) == 5
        assert BuddyAllocator.order_for(1024) == 10
        assert BuddyAllocator.order_for(1025) == 11

    def test_order_bounds(self):
        with pytest.raises(ValueError):
            BuddyAllocator.order_for(0)
        with pytest.raises(MemoryError):
            BuddyAllocator.order_for((1 << MAX_ORDER) + 1)

    def test_alloc_free_roundtrip(self):
        b = BuddyAllocator()
        ptr, cycles = b.malloc(100)
        assert cycles > 0
        b.free(ptr)
        b.check_invariants()
        assert b.free_bytes() == 1 << MAX_ORDER  # fully re-coalesced

    def test_split_produces_buddies(self):
        b = BuddyAllocator()
        ptr, _ = b.malloc(16)
        assert b.stats.splits == MAX_ORDER - MIN_ORDER
        b.check_invariants()

    def test_buddies_merge_only_with_their_buddy(self):
        b = BuddyAllocator()
        p1, _ = b.malloc(16)
        p2, _ = b.malloc(16)
        assert abs(p1 - p2) == 16  # adjacent buddies
        b.free(p1)
        b.check_invariants()
        # p1 cannot merge upward while p2 (its buddy) is live.
        assert b.free_bytes() == (1 << MAX_ORDER) - 16
        b.free(p2)
        assert b.free_bytes() == 1 << MAX_ORDER

    def test_double_free_rejected(self):
        b = BuddyAllocator()
        ptr, _ = b.malloc(64)
        b.free(ptr)
        with pytest.raises(ValueError):
            b.free(ptr)

    def test_exhaustion(self):
        b = BuddyAllocator()
        b.malloc(1 << MAX_ORDER)
        with pytest.raises(MemoryError):
            b.malloc(16)

    @given(st.lists(st.integers(min_value=1, max_value=8192), min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_property_conservation(self, sizes):
        b = BuddyAllocator()
        rng = random.Random(0)
        live = []
        for size in sizes:
            ptr, _ = b.malloc(size)
            live.append(ptr)
            if live and rng.random() < 0.4:
                b.free(live.pop(rng.randrange(len(live))))
        b.check_invariants()
        for ptr in live:
            b.free(ptr)
        b.check_invariants()
        assert b.free_bytes() == 1 << MAX_ORDER


class TestBuddyVsTCMalloc:
    def test_buddy_fragments_more(self):
        """The Section 2 argument: power-of-two rounding wastes far more
        than an 84-class table on realistic (non-power-of-two) sizes."""
        rng = random.Random(7)
        sizes = [rng.randint(17, 4000) for _ in range(2000)]
        table = SizeClassTable.generate()
        tc_frag = internal_fragmentation_of_table(table, sizes)

        buddy_requested = sum(sizes)
        buddy_allocated = sum(1 << BuddyAllocator.order_for(s) for s in sizes)
        buddy_frag = 1.0 - buddy_requested / buddy_allocated

        assert buddy_frag > 1.8 * tc_frag
        assert tc_frag < 0.15  # the table's design target (~12.5%)

    def test_buddy_latency_uncompetitive(self):
        """A warm TCMalloc fast path beats the buddy walk — the bar the
        paper says hardware proposals must clear ('a typical malloc call
        takes only 20 cycles ... setting the bar high')."""
        buddy = BuddyAllocator()
        tc = TCMalloc()
        for _ in range(40):
            p, _ = tc.malloc(64)
            tc.sized_free(p, 64)
            bp, _ = buddy.malloc(64)
            buddy.free(bp)
        _, tc_rec = tc.malloc(64)
        _, buddy_cycles = buddy.malloc(64)
        assert tc_rec.cycles <= buddy_cycles + 5


class TestFragmentationReport:
    def test_internal_fragmentation_bounded(self):
        alloc = TCMalloc(config=AllocatorConfig(release_rate=0))
        rng = random.Random(3)
        for _ in range(300):
            alloc.malloc(rng.randint(17, 2000))
        report = measure(alloc)
        assert 0.0 <= report.internal < 0.15
        assert report.requested_bytes <= report.allocated_bytes

    def test_external_includes_caches(self):
        alloc = TCMalloc(config=AllocatorConfig(release_rate=0))
        ptrs = [alloc.malloc(64)[0] for _ in range(100)]
        for p in ptrs:
            alloc.sized_free(p, 64)
        report = measure(alloc)
        assert report.requested_bytes == 0
        assert report.cached_bytes > 0
        assert report.external == pytest.approx(1.0)  # nothing live

    def test_overhead_factor(self):
        alloc = TCMalloc(config=AllocatorConfig(release_rate=0))
        alloc.malloc(100 * 1024)
        report = measure(alloc)
        assert report.overhead_factor >= 1.0

    def test_empty_allocator(self):
        report = measure(TCMalloc())
        assert report.internal == 0.0
        assert report.overhead_factor == 1.0

    def test_more_classes_less_waste(self):
        """Fewer classes (the buddy extreme) means more rounding waste —
        why TCMalloc carries 80+ classes."""
        table = SizeClassTable.generate()
        rng = random.Random(1)
        sizes = [rng.randint(17, 4000) for _ in range(1000)]
        full = internal_fragmentation_of_table(table, sizes)

        class EveryOtherClass:
            def size_class_of(self, size):
                cl = table.size_class_of(size)
                return min(table.num_classes - 1, cl + (cl % 2))

            def alloc_size_of(self, cl):
                return table.alloc_size_of(cl)

        halved = internal_fragmentation_of_table(EveryOtherClass(), sizes)
        assert halved > full

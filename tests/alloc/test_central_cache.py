"""Tests for the central free lists."""

import pytest

from repro.alloc.central_cache import CentralFreeList
from repro.alloc.constants import AllocatorConfig
from repro.alloc.context import Machine
from repro.alloc.page_heap import PageHeap
from repro.alloc.size_classes import SizeClassTable
from repro.sim.uop import UopKind


@pytest.fixture
def setup():
    machine = Machine()
    config = AllocatorConfig(release_rate=0)
    table = SizeClassTable.generate(machine.address_space)
    heap = PageHeap(machine.address_space, config)
    cl = table.size_class_of(64)
    central = CentralFreeList(cl, table, heap, config)
    return machine, table, heap, cl, central


class TestRemoveRange:
    def test_populates_on_demand(self, setup):
        machine, table, heap, cl, central = setup
        taken = central.remove_range(machine.new_emitter(), 4)
        assert len(taken) == 4
        assert central.stats.populates == 1
        assert heap.stats.spans_allocated == 1

    def test_objects_unique_and_spaced(self, setup):
        machine, table, heap, cl, central = setup
        taken = central.remove_range(machine.new_emitter(), 8)
        assert len(set(taken)) == 8
        obj = table.alloc_size_of(cl)
        addrs = sorted(taken)
        assert all(b - a == obj for a, b in zip(addrs, addrs[1:]))

    def test_carving_links_objects_in_memory(self, setup):
        machine, table, heap, cl, central = setup
        central.remove_range(machine.new_emitter(), 1)
        span = central.nonempty_spans[-1]
        # Walk the span free list through simulated memory.
        count, ptr = 0, span.freelist_head
        while ptr and count < 10_000:
            ptr = machine.memory.read_word(ptr)
            count += 1
        assert count == span.objects_free

    def test_no_repopulate_while_nonempty(self, setup):
        machine, table, heap, cl, central = setup
        central.remove_range(machine.new_emitter(), 2)
        central.remove_range(machine.new_emitter(), 2)
        assert central.stats.populates == 1

    def test_lock_cost_emitted(self, setup):
        machine, table, heap, cl, central = setup
        em = machine.new_emitter()
        central.remove_range(em, 1)
        fixed = [u for u in em.build() if u.kind is UopKind.FIXED]
        assert len(fixed) >= 2  # acquire + release at least

    def test_invalid_count(self, setup):
        machine, *_, central = setup
        with pytest.raises(ValueError):
            central.remove_range(machine.new_emitter(), 0)

    def test_accounting(self, setup):
        machine, table, heap, cl, central = setup
        per_span = table.objects_per_span(cl)
        central.remove_range(machine.new_emitter(), 5)
        assert central.num_free_objects == per_span - 5


class TestInsertRange:
    def test_roundtrip(self, setup):
        machine, table, heap, cl, central = setup
        taken = central.remove_range(machine.new_emitter(), 6)
        before = central.num_free_objects
        central.insert_range(machine.new_emitter(), taken[:3])
        assert central.num_free_objects == before + 3

    def test_full_roundtrip_releases_span(self, setup):
        """Returning every object completes the span, which goes back to
        the page heap rather than sitting in the central list."""
        machine, table, heap, cl, central = setup
        taken = central.remove_range(machine.new_emitter(), 6)
        central.insert_range(machine.new_emitter(), taken)
        assert central.stats.spans_returned == 1
        assert central.num_free_objects == 0

    def test_wrong_class_rejected(self, setup):
        machine, table, heap, cl, central = setup
        other = CentralFreeList(cl + 1, table, heap, AllocatorConfig(release_rate=0))
        taken = central.remove_range(machine.new_emitter(), 1)
        with pytest.raises(ValueError):
            other.insert_range(machine.new_emitter(), taken)

    def test_full_span_returns_to_page_heap(self, setup):
        machine, table, heap, cl, central = setup
        per_span = table.objects_per_span(cl)
        taken = central.remove_range(machine.new_emitter(), per_span)
        assert central.num_free_objects == 0
        central.insert_range(machine.new_emitter(), taken)
        assert central.stats.spans_returned == 1
        assert heap.stats.spans_freed == 1
        assert central.num_free_objects == 0

    def test_reuse_after_span_return(self, setup):
        machine, table, heap, cl, central = setup
        per_span = table.objects_per_span(cl)
        taken = central.remove_range(machine.new_emitter(), per_span)
        central.insert_range(machine.new_emitter(), taken)
        again = central.remove_range(machine.new_emitter(), 2)
        assert len(again) == 2

    def test_stats_track_movement(self, setup):
        machine, table, heap, cl, central = setup
        taken = central.remove_range(machine.new_emitter(), 3)
        central.insert_range(machine.new_emitter(), taken[:2])
        assert central.stats.objects_moved_out == 3
        assert central.stats.objects_moved_in == 2

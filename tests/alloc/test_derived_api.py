"""Tests for calloc / realloc / memalign."""

import pytest

from repro.alloc import AllocatorConfig, TCMalloc
from repro.core import MallaccTCMalloc


@pytest.fixture
def alloc():
    return TCMalloc(config=AllocatorConfig(release_rate=0))


class TestCalloc:
    def test_allocates_product(self, alloc):
        ptr, rec = alloc.calloc(10, 16)
        assert alloc.live[ptr][0] == 160

    def test_memset_charged(self, alloc):
        for _ in range(6):  # warm the 4 KB class
            p, _ = alloc.malloc(4096)
            alloc.sized_free(p, 4096)
        _, plain = alloc.malloc(4096)
        _, zeroed = alloc.calloc(64, 64)  # 4 KB, zeroed
        assert zeroed.cycles > plain.cycles + 64  # the memset bill

    def test_validation(self, alloc):
        with pytest.raises(ValueError):
            alloc.calloc(0, 8)
        with pytest.raises(ValueError):
            alloc.calloc(8, 0)


class TestRealloc:
    def test_same_class_in_place(self, alloc):
        ptr, _ = alloc.malloc(60)
        new_ptr, rec = alloc.realloc(ptr, 62)  # same 64-byte class
        assert new_ptr == ptr
        assert alloc.live[ptr][0] == 62
        assert rec.cycles < 60  # no copy, no new allocation

    def test_grow_moves_and_copies(self, alloc):
        ptr, _ = alloc.malloc(64)
        new_ptr, rec = alloc.realloc(ptr, 4096)
        assert new_ptr != ptr
        assert ptr not in alloc.live
        assert alloc.live[new_ptr][0] == 4096
        assert rec.cycles > 2  # includes the copy

    def test_shrink_across_classes(self, alloc):
        ptr, _ = alloc.malloc(4096)
        new_ptr, _ = alloc.realloc(ptr, 16)
        assert alloc.live[new_ptr][0] == 16
        alloc.check_conservation()

    def test_large_object_realloc(self, alloc):
        ptr, _ = alloc.malloc(512 * 1024)
        new_ptr, _ = alloc.realloc(ptr, 700 * 1024)
        assert alloc.live[new_ptr][0] == 700 * 1024
        assert ptr not in alloc.live

    def test_errors(self, alloc):
        with pytest.raises(ValueError):
            alloc.realloc(0x9999, 64)
        ptr, _ = alloc.malloc(64)
        with pytest.raises(ValueError):
            alloc.realloc(ptr, 0)

    def test_works_on_mallacc(self):
        accel = MallaccTCMalloc(config=AllocatorConfig(release_rate=0))
        ptr, _ = accel.malloc(60)
        new_ptr, _ = accel.realloc(ptr, 62)
        assert new_ptr == ptr
        new_ptr, _ = accel.realloc(ptr, 2000)
        assert new_ptr != ptr
        accel.check_conservation()
        accel.malloc_cache.check_invariants(accel.machine.memory)


class TestMemalign:
    def test_small_alignment_natural(self, alloc):
        ptr, _ = alloc.memalign(16, 100)
        assert ptr % 16 == 0

    def test_page_alignment(self, alloc):
        ptr, _ = alloc.memalign(8192, 100)
        assert ptr % 8192 == 0
        assert alloc.live[ptr][0] == 100  # requested size preserved

    def test_large_alignment(self, alloc):
        ptr, _ = alloc.memalign(4096, 5000)
        assert ptr % 4096 == 0

    def test_non_power_of_two_rejected(self, alloc):
        with pytest.raises(ValueError):
            alloc.memalign(24, 64)
        with pytest.raises(ValueError):
            alloc.memalign(0, 64)

    def test_conservation_after_retries(self, alloc):
        ptrs = [alloc.memalign(1024, 100)[0] for _ in range(5)]
        assert len(set(ptrs)) == 5
        for p in ptrs:
            alloc.free(p)
        alloc.check_conservation()

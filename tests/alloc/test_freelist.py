"""Tests for free lists in simulated memory."""

import pytest

from repro.alloc.context import Machine
from repro.alloc.freelist import FreeList
from repro.sim.memory import NULL
from repro.sim.uop import Tag, UopKind


@pytest.fixture
def machine():
    return Machine()


@pytest.fixture
def flist(machine):
    addr = machine.address_space.reserve_metadata(64, align=64)
    return FreeList(memory=machine.memory, header_addr=addr)


BLOCKS = [0x2000_0000_0000 + i * 64 for i in range(8)]


class TestFunctional:
    def test_push_pop_lifo(self, flist):
        for b in BLOCKS[:3]:
            flist.push_functional(b)
        assert flist.pop_functional() == BLOCKS[2]
        assert flist.pop_functional() == BLOCKS[1]
        assert flist.pop_functional() == BLOCKS[0]

    def test_links_live_in_simulated_memory(self, flist, machine):
        """The TCMalloc trick: *block == next pointer."""
        flist.push_functional(BLOCKS[0])
        flist.push_functional(BLOCKS[1])
        assert machine.memory.read_word(flist.header_addr) == BLOCKS[1]
        assert machine.memory.read_word(BLOCKS[1]) == BLOCKS[0]
        assert machine.memory.read_word(BLOCKS[0]) == NULL

    def test_length_tracking(self, flist):
        for b in BLOCKS[:4]:
            flist.push_functional(b)
        assert flist.length == 4
        flist.pop_functional()
        assert flist.length == 3

    def test_pop_empty_raises(self, flist):
        with pytest.raises(IndexError):
            flist.pop_functional()

    def test_double_push_rejected(self, flist):
        flist.push_functional(BLOCKS[0])
        with pytest.raises(ValueError):
            flist.push_functional(BLOCKS[0])

    def test_contains(self, flist):
        flist.push_functional(BLOCKS[0])
        assert BLOCKS[0] in flist
        assert BLOCKS[1] not in flist

    def test_iter_blocks_walks_memory(self, flist):
        for b in BLOCKS[:4]:
            flist.push_functional(b)
        assert list(flist.iter_blocks()) == list(reversed(BLOCKS[:4]))

    def test_low_water_tracks_minimum(self, flist):
        for b in BLOCKS[:4]:
            flist.push_functional(b)
        flist.low_water = flist.length
        flist.pop_functional()
        flist.pop_functional()
        flist.push_functional(BLOCKS[3])
        assert flist.low_water == 2


class TestTimedOps:
    def test_emit_pop_is_figure7(self, flist, machine):
        """Pop = two dependent loads + one store (Figure 7)."""
        flist.push_functional(BLOCKS[0])
        flist.push_functional(BLOCKS[1])
        em = machine.new_emitter()
        result = flist.emit_pop(em)
        trace = em.build()
        loads = [u for u in trace if u.kind is UopKind.LOAD]
        stores = [u for u in trace if u.kind is UopKind.STORE]
        assert len(loads) == 2 and len(stores) == 1
        assert result.ptr == BLOCKS[1]
        assert result.next_ptr == BLOCKS[0]
        # Second load depends on the first (head -> head->next).
        assert trace.uops[1].deps == (0,)
        assert all(u.tag is Tag.PUSH_POP for u in trace)

    def test_emit_pop_updates_memory(self, flist, machine):
        flist.push_functional(BLOCKS[0])
        flist.push_functional(BLOCKS[1])
        em = machine.new_emitter()
        flist.emit_pop(em)
        assert machine.memory.read_word(flist.header_addr) == BLOCKS[0]
        assert flist.length == 1

    def test_emit_push_structure(self, flist, machine):
        em = machine.new_emitter()
        flist.emit_push(em, BLOCKS[0])
        trace = em.build()
        assert trace.count(UopKind.LOAD) == 1
        assert trace.count(UopKind.STORE) == 2

    def test_emit_push_then_pop_roundtrip(self, flist, machine):
        em = machine.new_emitter()
        flist.emit_push(em, BLOCKS[0])
        flist.emit_push(em, BLOCKS[1])
        result = flist.emit_pop(em)
        assert result.ptr == BLOCKS[1]

    def test_emit_pop_empty_raises(self, flist, machine):
        with pytest.raises(IndexError):
            flist.emit_pop(machine.new_emitter())

    def test_emit_push_double_free_raises(self, flist, machine):
        em = machine.new_emitter()
        flist.emit_push(em, BLOCKS[0])
        with pytest.raises(ValueError):
            flist.emit_push(em, BLOCKS[0])

    def test_metadata_update_tagged(self, flist, machine):
        em = machine.new_emitter()
        flist.emit_update_metadata(em)
        trace = em.build()
        assert all(u.tag is Tag.METADATA for u in trace)
        assert len(trace) == 3  # load, alu, store


class TestCachedOps:
    def _prime(self, flist):
        flist.push_functional(BLOCKS[0])
        flist.push_functional(BLOCKS[1])
        flist.push_functional(BLOCKS[2])

    def test_pop_cached_skips_loads(self, flist, machine):
        self._prime(flist)
        em = machine.new_emitter()
        flist.pop_cached(em, BLOCKS[2], BLOCKS[1])
        trace = em.build()
        assert trace.count(UopKind.LOAD) == 0
        assert trace.count(UopKind.STORE) == 1
        assert flist.length == 2
        assert machine.memory.read_word(flist.header_addr) == BLOCKS[1]

    def test_pop_cached_detects_wrong_head(self, flist, machine):
        self._prime(flist)
        with pytest.raises(AssertionError, match="diverged"):
            flist.pop_cached(machine.new_emitter(), BLOCKS[0], BLOCKS[1])

    def test_pop_cached_detects_wrong_next(self, flist, machine):
        self._prime(flist)
        with pytest.raises(AssertionError, match="diverged"):
            flist.pop_cached(machine.new_emitter(), BLOCKS[2], BLOCKS[0])

    def test_pop_cached_empty_raises(self, flist, machine):
        with pytest.raises(IndexError):
            flist.pop_cached(machine.new_emitter(), BLOCKS[0], NULL)

    def test_push_cached_skips_head_load(self, flist, machine):
        self._prime(flist)
        em = machine.new_emitter()
        flist.push_cached(em, BLOCKS[4], BLOCKS[2])
        trace = em.build()
        assert trace.count(UopKind.LOAD) == 0
        assert trace.count(UopKind.STORE) == 2
        assert machine.memory.read_word(flist.header_addr) == BLOCKS[4]
        assert machine.memory.read_word(BLOCKS[4]) == BLOCKS[2]

    def test_push_cached_detects_stale_head(self, flist, machine):
        self._prime(flist)
        with pytest.raises(AssertionError, match="diverged"):
            flist.push_cached(machine.new_emitter(), BLOCKS[4], BLOCKS[0])

    def test_push_cached_double_free(self, flist, machine):
        self._prime(flist)
        with pytest.raises(ValueError):
            flist.push_cached(machine.new_emitter(), BLOCKS[2], BLOCKS[2])

"""Property-based tests of allocator correctness (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.alloc import AllocatorConfig, TCMalloc

SIZES = st.sampled_from([1, 8, 16, 24, 48, 64, 100, 256, 1024, 4096, 30000])


@given(st.lists(SIZES, min_size=1, max_size=60))
@settings(max_examples=30, deadline=None)
def test_allocations_never_overlap(sizes):
    alloc = TCMalloc()
    regions = []
    for size in sizes:
        ptr, _ = alloc.malloc(size)
        rounded = alloc.table.alloc_size_of(alloc.table.size_class_of(size))
        for start, end in regions:
            assert ptr + rounded <= start or ptr >= end
        regions.append((ptr, ptr + rounded))


@given(st.lists(SIZES, min_size=1, max_size=40), st.randoms())
@settings(max_examples=30, deadline=None)
def test_alloc_free_conserves(sizes, rng):
    alloc = TCMalloc(config=AllocatorConfig(release_rate=0))
    live = []
    for size in sizes:
        live.append(alloc.malloc(size)[0])
        if live and rng.random() < 0.4:
            alloc.free(live.pop(rng.randrange(len(live))))
    for ptr in live:
        alloc.free(ptr)
    assert alloc.live_bytes == 0
    alloc.check_conservation()


@given(st.lists(SIZES, min_size=1, max_size=40))
@settings(max_examples=20, deadline=None)
def test_cycles_always_positive_and_clock_monotone(sizes):
    alloc = TCMalloc()
    last_clock = -1
    for size in sizes:
        _, rec = alloc.malloc(size)
        assert rec.cycles > 0
        assert rec.clock > last_clock
        last_clock = rec.clock


class AllocatorMachine(RuleBasedStateMachine):
    """Stateful fuzz: malloc/free/sized_free in random interleavings, with
    conservation checked as an invariant."""

    def __init__(self):
        super().__init__()
        self.alloc = TCMalloc(config=AllocatorConfig(release_rate=0))
        self.live: dict[int, int] = {}

    @rule(size=SIZES)
    def do_malloc(self, size):
        ptr, rec = self.alloc.malloc(size)
        assert ptr not in self.live
        self.live[ptr] = size
        assert rec.cycles > 0

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def do_free(self, data):
        ptr = data.draw(st.sampled_from(sorted(self.live)))
        size = self.live.pop(ptr)
        if size <= 256 * 1024 and data.draw(st.booleans()):
            self.alloc.sized_free(ptr, size)
        else:
            self.alloc.free(ptr)

    @invariant()
    def conservation(self):
        assert self.alloc.live_bytes == sum(self.live.values())


AllocatorMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
TestAllocatorStateful = AllocatorMachine.TestCase

"""Tests for the Hoard-style allocator."""

import random

import pytest

from repro.alloc.hoard import (
    EMPTINESS_THRESHOLD,
    MAX_BLOCK,
    SLACK_SUPERBLOCKS,
    SUPERBLOCK_BYTES,
    HoardAllocator,
    hoard_size_classes,
)


class TestSizeClasses:
    def test_geometric_growth(self):
        sizes = hoard_size_classes()
        assert sizes[0] == 16
        assert sizes[-1] == MAX_BLOCK
        ratios = [b / a for a, b in zip(sizes, sizes[1:])]
        assert all(1.0 < r <= 1.6 for r in ratios)

    def test_aligned(self):
        assert all(s % 8 == 0 for s in hoard_size_classes())

    def test_class_of_rounds_up(self):
        h = HoardAllocator()
        for size in (1, 16, 17, 100, 1000, MAX_BLOCK):
            cl = h.class_of(size)
            assert h.block_size_of(cl) >= size
            if cl > 0:
                assert h.block_size_of(cl - 1) < size

    def test_class_of_bounds(self):
        h = HoardAllocator()
        with pytest.raises(ValueError):
            h.class_of(0)
        with pytest.raises(MemoryError):
            h.class_of(MAX_BLOCK + 1)


class TestAllocFree:
    def test_roundtrip(self):
        h = HoardAllocator()
        ptr, cycles = h.malloc(64)
        assert cycles > 0
        h.free(ptr)
        h.check_invariants()

    def test_blocks_within_superblock(self):
        h = HoardAllocator()
        ptrs = [h.malloc(64)[0] for _ in range(10)]
        bases = {p - (p - 0x2000_0000_0000) % SUPERBLOCK_BYTES for p in ptrs}
        assert len(bases) == 1  # all from the current superblock

    def test_superblock_refill_when_full(self):
        h = HoardAllocator()
        cl = h.class_of(4000)
        capacity = SUPERBLOCK_BYTES // h.block_size_of(cl)
        for _ in range(capacity + 1):
            h.malloc(4000)
        assert h.stats.superblocks_created == 2

    def test_free_returns_to_owning_superblock(self):
        """Hoard semantics: a block freed anywhere returns to its
        superblock, not to a freeing-thread cache."""
        h = HoardAllocator(num_heaps=2)
        ptr, _ = h.malloc(64, heap=0)
        h.free(ptr, heap=1)
        ptr2, _ = h.malloc(64, heap=0)
        assert ptr2 == ptr  # heap 0's superblock got its block back

    def test_double_free_rejected(self):
        h = HoardAllocator()
        ptr, _ = h.malloc(64)
        h.free(ptr)
        with pytest.raises(ValueError):
            h.free(ptr)

    def test_bad_heap(self):
        h = HoardAllocator(num_heaps=2)
        with pytest.raises(ValueError):
            h.malloc(64, heap=2)

    def test_steady_state_fast(self):
        h = HoardAllocator()
        for _ in range(60):
            p, _ = h.malloc(64)
            h.free(p)
        _, cycles = h.malloc(64)
        assert cycles <= 30  # a Figure 7 pop, like the others


class TestEmptinessInvariant:
    def test_empty_superblocks_migrate_to_global(self):
        h = HoardAllocator()
        cl = h.class_of(2048)
        per_sb = SUPERBLOCK_BYTES // h.block_size_of(cl)
        ptrs = [h.malloc(2048)[0] for _ in range(per_sb * (SLACK_SUPERBLOCKS + 3))]
        for p in ptrs:
            h.free(p)
        assert h.stats.migrations_to_global > 0
        assert h.global_heap.get(cl)
        h.check_invariants()

    def test_global_superblocks_reused(self):
        h = HoardAllocator(num_heaps=2)
        cl = h.class_of(2048)
        per_sb = SUPERBLOCK_BYTES // h.block_size_of(cl)
        ptrs = [h.malloc(2048, heap=0)[0] for _ in range(per_sb * (SLACK_SUPERBLOCKS + 3))]
        for p in ptrs:
            h.free(p, heap=0)
        created = h.stats.superblocks_created
        h.malloc(2048, heap=1)  # heap 1 should reuse a migrated superblock
        assert h.stats.migrations_from_global >= 1
        assert h.stats.superblocks_created == created

    def test_blowup_bounded(self):
        """Hoard's theorem: footprint stays O(live) + K * S per heap even
        for producer/consumer churn."""
        h = HoardAllocator(num_heaps=2)
        queue = []
        for _ in range(2000):
            p, _ = h.malloc(128, heap=0)
            queue.append(p)
            if len(queue) > 8:
                h.free(queue.pop(0), heap=1)
        bound = h.live_bytes * 8 + 2 * (SLACK_SUPERBLOCKS + 2) * SUPERBLOCK_BYTES
        assert h.reserved_bytes() <= bound
        h.check_invariants()

    def test_emptiness_threshold_respected(self):
        """No migration while the heap stays above the threshold."""
        h = HoardAllocator()
        ptrs = [h.malloc(64)[0] for _ in range(100)]
        # Free just a handful: fullness stays high.
        for p in ptrs[:5]:
            h.free(p)
        assert h.stats.migrations_to_global == 0


class TestInvariants:
    def test_churn_conserves(self):
        h = HoardAllocator(num_heaps=3)
        rng = random.Random(9)
        live = []
        for _ in range(1000):
            heap = rng.randrange(3)
            if live and rng.random() < 0.5:
                h.free(live.pop(rng.randrange(len(live))), heap=heap)
            else:
                live.append(h.malloc(rng.choice([16, 64, 256, 1024]), heap=heap)[0])
        h.check_invariants()
        assert h.live_bytes == sum(h.live[p][0] for p in h.live)

    def test_pointers_unique(self):
        h = HoardAllocator()
        ptrs = [h.malloc(100)[0] for _ in range(200)]
        assert len(set(ptrs)) == 200


class TestMallaccHoard:
    """Mallacc over Hoard: works, with documented generality caveats."""

    def _churn(self, cls, n=800, heaps=2, seed=1):
        from repro.alloc.hoard import MallaccHoard  # noqa: F401

        h = cls(num_heaps=heaps)
        rng = random.Random(seed)
        live, cycles = [], 0
        for _ in range(n):
            heap = rng.randrange(heaps)
            if live and rng.random() < 0.5:
                cycles += h.free(live.pop(rng.randrange(len(live))), heap=heap)
            else:
                p, cy = h.malloc(rng.choice([16, 40, 100, 500]), heap=heap)
                live.append(p)
                cycles += cy
        h.check_invariants()
        return h, cycles, live

    def test_pointer_equivalence(self):
        from repro.alloc.hoard import MallaccHoard

        _, _, base_ptrs = self._churn(HoardAllocator)
        _, _, accel_ptrs = self._churn(MallaccHoard)
        assert base_ptrs == accel_ptrs

    def test_saves_cycles(self):
        from repro.alloc.hoard import MallaccHoard

        _, base_cycles, _ = self._churn(HoardAllocator)
        _, accel_cycles, _ = self._churn(MallaccHoard)
        assert accel_cycles < base_cycles

    def test_per_heap_caches(self):
        from repro.alloc.hoard import MallaccHoard

        h, _, _ = self._churn(MallaccHoard)
        assert h.isas[0].cache is not h.isas[1].cache
        assert h.isas[0].cache.sz_hit_rate > 0.9

    def test_pop_hit_rate_lower_than_tcmalloc(self):
        """The generality caveat: Hoard's per-superblock lists force
        invalidations TCMalloc's per-class anchors never need, so the list
        half of the cache hits less often."""
        from repro.alloc.hoard import MallaccHoard

        h, _, _ = self._churn(MallaccHoard)
        assert 0.1 < h.isas[0].cache.pop_hit_rate < 0.85

    def test_single_heap_no_remote_invalidation(self):
        from repro.alloc.hoard import MallaccHoard

        h, _, _ = self._churn(MallaccHoard, heaps=1)
        assert h.isas[0].cache.pop_hit_rate > 0.3

"""Unit tests for trace-scheduling memoization (repro.sim.trace_cache).

The differential sweep over whole workloads lives in
``tests/integration/test_trace_cache_differential.py``; here we pin the
cache mechanics (fingerprint canonicality, LRU behavior, statistics, the
enable/disable switches) at the component level.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc import TCMalloc
from repro.sim.timing import CoreConfig, TimingModel
from repro.sim.trace_cache import DEFAULT_TRACE_CACHE_ENTRIES, TraceCache, TraceCacheStats
from repro.sim.uop import LIMIT_STUDY_TAGS, Tag, Trace, TraceBuilder
from tests.sim.test_timing_properties import traces


def small_trace(load_latency=4, dep_on_load=True, tag=Tag.ADDRESSING):
    tb = TraceBuilder()
    a = tb.alu(tag=tag)
    ld = tb.load(0x1000, latency=load_latency, deps=(a,), tag=tag)
    tb.alu(deps=(ld,) if dep_on_load else (), tag=tag)
    return tb.build()


class TestFingerprint:
    def test_addresses_excluded(self):
        """Traces differing only in addresses schedule identically, so the
        fingerprint must unify them."""
        tb1, tb2 = TraceBuilder(), TraceBuilder()
        tb1.load(0x1000, latency=4)
        tb2.load(0xDEAD_BEEF, latency=4)
        assert tb1.build().fingerprint() == tb2.build().fingerprint()

    def test_latency_included(self):
        assert small_trace(4).fingerprint() != small_trace(12).fingerprint()

    def test_deps_included(self):
        assert (
            small_trace(dep_on_load=True).fingerprint()
            != small_trace(dep_on_load=False).fingerprint()
        )

    def test_tag_included(self):
        """Tags don't affect a full run but do select ablation variants; the
        key must distinguish them so run_ablated entries never alias."""
        assert (
            small_trace(tag=Tag.SIZE_CLASS).fingerprint()
            != small_trace(tag=Tag.PUSH_POP).fingerprint()
        )

    def test_kind_included(self):
        tb1, tb2 = TraceBuilder(), TraceBuilder()
        tb1.alu()
        tb2.branch()
        assert tb1.build().fingerprint() != tb2.build().fingerprint()

    def test_builder_fingerprint_matches_lazy_recompute(self):
        """build() precomputes the fingerprint; it must equal what a
        from-scratch recompute over the uops produces."""
        trace = small_trace()
        precomputed = trace.fingerprint()
        fresh = Trace(uops=list(trace.uops))
        assert fresh.fingerprint() == precomputed

    def test_fingerprint_is_hashable_and_stable(self):
        trace = small_trace()
        assert hash(trace.fingerprint()) == hash(trace.fingerprint())
        assert trace.fingerprint() is trace.fingerprint()  # cached


class TestTraceCacheLRU:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceCache(0)
        with pytest.raises(ValueError):
            TraceCache(-1)

    def test_len_bounded_by_capacity(self):
        cache = TraceCache(4)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 4
        assert cache.stats.evictions == 6

    def test_evicts_least_recently_used(self):
        cache = TraceCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b", not "a"
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3

    def test_stats_counting(self):
        cache = TraceCache(8)
        assert cache.get("x") is None
        cache.put("x", 1)
        assert cache.get("x") == 1
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.lookups) == (1, 1, 2)
        assert stats.hit_rate == 0.5
        assert stats.snapshot() == (1, 1)

    def test_empty_stats_hit_rate(self):
        assert TraceCacheStats().hit_rate == 0.0

    def test_clear_drops_entries_keeps_stats(self):
        cache = TraceCache(8)
        cache.put("x", 1)
        cache.get("x")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("x") is None
        assert cache.stats.hits == 1


class TestTimingModelMemoization:
    def test_enabled_by_default(self):
        model = TimingModel()
        assert model.cache is not None
        assert model.cache.max_entries == DEFAULT_TRACE_CACHE_ENTRIES

    def test_config_zero_disables(self):
        model = TimingModel(CoreConfig(trace_cache_entries=0))
        assert model.cache is None
        assert model.cache_stats is None

    def test_hit_returns_equal_result(self):
        model = TimingModel()
        trace = small_trace()
        first = model.run(trace)
        again = model.run(trace)
        assert again is first  # shared cached object
        assert model.cache_stats.snapshot() == (1, 1)

    def test_structurally_equal_traces_share_entry(self):
        model = TimingModel()
        r1 = model.run(small_trace())
        r2 = model.run(small_trace())  # distinct object, same shape
        assert r2 is r1
        assert model.cache_stats.hits == 1

    def test_set_memoization_toggles(self):
        model = TimingModel()
        model.run(small_trace())
        model.set_memoization(False)
        assert model.cache is None
        r_off = model.run(small_trace())
        model.set_memoization(True)
        assert model.cache is not None
        assert model.cache_stats.lookups == 0  # fresh cache, fresh stats
        assert model.run(small_trace()).cycles == r_off.cycles

    def test_run_ablated_matches_unmemoized_without_tags(self):
        memo = TimingModel()
        plain = TimingModel(CoreConfig(trace_cache_entries=0))
        trace = small_trace(tag=Tag.SIZE_CLASS)
        expected = plain.run(trace.without_tags(LIMIT_STUDY_TAGS)).cycles
        assert memo.run_ablated(trace, LIMIT_STUDY_TAGS).cycles == expected
        # Second call is a pure cache hit (rewrite + schedule both skipped).
        before = memo.cache_stats.hits
        assert memo.run_ablated(trace, LIMIT_STUDY_TAGS).cycles == expected
        assert memo.cache_stats.hits == before + 1

    def test_full_and_ablated_keys_never_alias(self):
        model = TimingModel()
        trace = small_trace(tag=Tag.SIZE_CLASS)
        full = model.run(trace)
        ablated = model.run_ablated(trace, {Tag.SIZE_CLASS})
        assert full.cycles != ablated.cycles or full is not ablated
        assert model.run(trace) is full
        assert model.run_ablated(trace, {Tag.SIZE_CLASS}) is ablated


class TestAllocatorSwitch:
    def test_tcmalloc_exposes_stats(self):
        alloc = TCMalloc()
        alloc.malloc(64)
        stats = alloc.trace_cache_stats
        assert stats is not None
        assert stats.lookups > 0

    def test_tcmalloc_memoize_false(self):
        alloc = TCMalloc(memoize_traces=False)
        assert alloc.trace_cache_stats is None
        ptr, record = alloc.malloc(64)
        assert record.cycles > 0

    def test_memoization_does_not_change_call_records(self):
        def replay(memoize):
            alloc = TCMalloc(memoize_traces=memoize)
            out = []
            for i in range(40):
                ptr, rec = alloc.malloc(64 if i % 2 else 256)
                out.append((rec.cycles, dict(rec.ablated)))
                out.append((alloc.free(ptr).cycles,))
            return out

        assert replay(True) == replay(False)


@given(traces())
@settings(max_examples=60, deadline=None)
def test_memoized_equals_unmemoized(trace):
    """The tentpole property: memoization is observationally invisible."""
    memo = TimingModel(CoreConfig())
    plain = TimingModel(CoreConfig(trace_cache_entries=0))
    a, b = memo.run(trace), plain.run(trace)
    assert a.cycles == b.cycles
    assert a.issue_times == b.issue_times
    assert a.ready_times == b.ready_times


@given(traces(), st.sets(st.sampled_from(list(Tag)), min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_memoized_ablation_equals_unmemoized(trace, tags):
    memo = TimingModel(CoreConfig())
    plain = TimingModel(CoreConfig(trace_cache_entries=0))
    memo.run(trace)  # populate the full-run entry first; must not alias
    assert memo.run_ablated(trace, tags).cycles == plain.run_ablated(trace, tags).cycles


@given(traces())
@settings(max_examples=40, deadline=None)
def test_tiny_cache_thrash_still_correct(trace):
    """Constant eviction (capacity 1) must never change an answer."""
    tiny = TimingModel(CoreConfig(trace_cache_entries=1))
    plain = TimingModel(CoreConfig(trace_cache_entries=0))
    for tags in (None, {Tag.SIZE_CLASS}, None, {Tag.PUSH_POP, Tag.SAMPLING}):
        if tags is None:
            assert tiny.run(trace).cycles == plain.run(trace).cycles
        else:
            assert (
                tiny.run_ablated(trace, tags).cycles
                == plain.run_ablated(trace, tags).cycles
            )
    assert len(tiny.cache) == 1

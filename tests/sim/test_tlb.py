"""Tests for the DTLB model."""

from repro.sim.tlb import TLB, TLBConfig


class TestTLB:
    def test_first_access_misses(self):
        tlb = TLB()
        assert tlb.access(0x1000) == tlb.config.miss_penalty

    def test_same_page_hits(self):
        tlb = TLB()
        tlb.access(0x1000)
        assert tlb.access(0x1FFF) == 0

    def test_adjacent_page_misses(self):
        tlb = TLB()
        tlb.access(0x1000)
        assert tlb.access(0x2000) == tlb.config.miss_penalty

    def test_capacity_lru_eviction(self):
        tlb = TLB(TLBConfig(entries=2, page_size=4096, miss_penalty=30))
        tlb.access(0x1000)
        tlb.access(0x2000)
        tlb.access(0x1000)  # refresh page 1
        tlb.access(0x3000)  # evicts page 2 (LRU)
        assert tlb.contains(0x1000)
        assert not tlb.contains(0x2000)

    def test_flush(self):
        tlb = TLB()
        tlb.access(0x1000)
        tlb.flush()
        assert not tlb.contains(0x1000)

    def test_miss_rate(self):
        tlb = TLB()
        tlb.access(0x1000)
        tlb.access(0x1008)
        tlb.access(0x1010)
        assert tlb.miss_rate == 1 / 3

    def test_miss_rate_empty(self):
        assert TLB().miss_rate == 0.0

    def test_custom_penalty(self):
        tlb = TLB(TLBConfig(miss_penalty=99))
        assert tlb.access(0x5000) == 99

"""Unit tests for the sampled-simulation planning and estimation module."""

import math
import random

import pytest

from repro.sim.sampling import (
    MODE_DETAIL,
    MODE_SKIP,
    MODE_WARM,
    IntervalFeatures,
    SamplePlan,
    SamplingConfig,
    Stratum,
    betainc_regularized,
    bootstrap_metric_ci,
    bootstrap_total_ci,
    feature_vectors,
    horvitz_thompson_total,
    kmeans,
    normal_quantile,
    percentile_rank_indices,
    plan_op_modes,
    plan_phase,
    plan_systematic,
    small_sample_width_factor,
    student_t_cdf,
    student_t_quantile,
    student_t_sf2,
)


class TestSamplingConfig:
    def test_defaults_valid(self):
        cfg = SamplingConfig()
        assert cfg.sampler == "systematic"
        assert cfg.stride == 16

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SamplingConfig(interval_ops=0)
        with pytest.raises(ValueError):
            SamplingConfig(sampler="magic")
        with pytest.raises(ValueError):
            SamplingConfig(cache_warming="never")
        with pytest.raises(ValueError):
            SamplingConfig(stride=0)

    def test_escalation_halves_stride(self):
        cfg = SamplingConfig(stride=8)
        assert cfg.escalated().stride == 4
        assert SamplingConfig(stride=1).escalated() is None

    def test_escalation_grows_phase_samples(self):
        cfg = SamplingConfig(sampler="phase", samples_per_cluster=2)
        assert cfg.escalated().samples_per_cluster == 3


class TestSystematicPlan:
    def test_every_strideth_interval(self):
        plan = plan_systematic(20, 4)
        assert plan.sampled == (0, 4, 8, 12, 16)
        assert plan.strata[0].population == 20

    def test_offset(self):
        plan = plan_systematic(10, 4, offset=2)
        assert plan.sampled == (2, 6)

    def test_degenerate_single_sample_padded(self):
        """A stride covering the whole stream still yields two sampled
        intervals so the bootstrap has within-stratum variance."""
        plan = plan_systematic(10, 10)
        assert len(plan.sampled) == 2

    def test_single_interval(self):
        plan = plan_systematic(1, 4)
        assert plan.sampled == (0,)

    def test_weights_sum_to_population(self):
        plan = plan_systematic(21, 4)
        assert math.isclose(sum(plan.weights().values()), 21.0)


class TestPlanValidation:
    def test_double_sampled_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplePlan(
                num_intervals=4,
                strata=(
                    Stratum(population=2, sampled=(0,)),
                    Stratum(population=2, sampled=(0,)),
                ),
            )

    def test_partition_enforced(self):
        with pytest.raises(ValueError):
            SamplePlan(num_intervals=4, strata=(Stratum(population=3, sampled=(0,)),))


class TestPhasePlan:
    def test_two_obvious_phases(self):
        vecs = [(0.0, 1.0)] * 6 + [(1.0, 0.0)] * 6
        plan = plan_phase(vecs, num_clusters=2, samples_per_cluster=2, seed=3)
        assert plan.num_intervals == 12
        assert len(plan.strata) == 2
        # Each stratum's samples must come from one side of the split.
        for stratum in plan.strata:
            sides = {i < 6 for i in stratum.sampled}
            assert len(sides) == 1

    def test_deterministic_across_seed_reuse(self):
        rng = random.Random(9)
        vecs = [tuple(rng.random() for _ in range(4)) for _ in range(30)]
        a = plan_phase(vecs, 5, seed=7)
        b = plan_phase(vecs, 5, seed=7)
        assert a == b

    def test_kmeans_identical_points(self):
        assert kmeans([(1.0, 2.0)] * 8, 3, seed=0) == [0] * 8

    def test_feature_vectors_normalized(self):
        f = IntervalFeatures()
        for _ in range(3):
            f.add(2, "fast")
        f.add(5, "slow")
        (vec,) = feature_vectors([f])
        assert math.isclose(sum(vec), 2.0)  # classes sum to 1, paths sum to 1


class TestOpModes:
    def test_detail_and_staggered_warm_slack(self):
        plan = plan_systematic(10, 5)  # samples 0 and 5
        modes = plan_op_modes(plan, 10, 100, warmup_ops=4, cache_warming="slack")
        assert modes[:10] == [MODE_DETAIL] * 10
        assert modes[50:60] == [MODE_DETAIL] * 10
        # Slack before interval 5 is staggered in [warmup_ops, 2*warmup_ops).
        depth = 4 + (5 * 2654435761) % 4
        assert modes[50 - depth : 50] == [MODE_WARM] * depth
        assert modes[50 - depth - 1] == MODE_SKIP

    def test_always_warm_has_no_skip(self):
        plan = plan_systematic(10, 5)
        modes = plan_op_modes(plan, 10, 100, warmup_ops=4, cache_warming="always")
        assert MODE_SKIP not in modes

    def test_tail_folded_into_last_interval(self):
        plan = plan_systematic(3, 1)
        modes = plan_op_modes(plan, 10, 35, warmup_ops=0)
        assert modes == [MODE_DETAIL] * 35


class TestPercentileRankIndices:
    def test_ceil_based_indices(self):
        lo, hi = percentile_rank_indices(2000, 0.95)
        assert (lo, hi) == (49, 1949)

    def test_bounds_clamped(self):
        lo, hi = percentile_rank_indices(3, 0.95)
        assert 0 <= lo <= hi <= 2

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            percentile_rank_indices(0, 0.95)
        with pytest.raises(ValueError):
            percentile_rank_indices(100, 1.0)

    def test_property_order_statistic_definition(self):
        """Property: for any (resamples, confidence), each returned index is
        the smallest (clamped) rank whose 1-based order statistic reaches
        its tail quantile, up to float tolerance, and the pair never
        inverts."""
        rng = random.Random(0)
        tol = 1e-6
        for _ in range(300):
            n = rng.randrange(1, 5000)
            conf = rng.uniform(0.01, 0.999)
            lo, hi = percentile_rank_indices(n, conf)
            alpha = (1.0 - conf) / 2.0
            assert 0 <= lo <= hi <= n - 1
            # hi+1 is the ceil(q*n)-th order statistic for q = 1 - alpha:
            # it reaches the quantile, and the previous rank does not.
            assert hi + 1 >= (1.0 - alpha) * n - tol or hi == n - 1
            assert hi < (1.0 - alpha) * n + tol
            assert lo + 1 >= alpha * n - tol
            assert lo < alpha * n + tol or lo == 0


class TestStudentT:
    def test_betainc_endpoints(self):
        assert betainc_regularized(2.0, 3.0, 0.0) == 0.0
        assert betainc_regularized(2.0, 3.0, 1.0) == 1.0

    def test_cdf_symmetry(self):
        for df in (1, 4, 30):
            assert math.isclose(
                student_t_cdf(1.7, df), 1.0 - student_t_cdf(-1.7, df), rel_tol=1e-9
            )
        assert student_t_cdf(0.0, 5) == 0.5

    def test_known_quantiles(self):
        # Classic table values: t_{0.975} at various df.
        assert math.isclose(student_t_quantile(0.975, 6), 2.4469, abs_tol=2e-4)
        assert math.isclose(student_t_quantile(0.975, 10), 2.2281, abs_tol=2e-4)
        assert math.isclose(normal_quantile(0.975), 1.9600, abs_tol=2e-4)

    def test_quantile_inverts_cdf(self):
        for p in (0.05, 0.5, 0.9, 0.995):
            assert math.isclose(student_t_cdf(student_t_quantile(p, 7), 7), p, abs_tol=1e-8)

    def test_two_sided_survival(self):
        t, df = 2.0, 9
        assert math.isclose(
            student_t_sf2(t, df), 2.0 * (1.0 - student_t_cdf(t, df)), rel_tol=1e-9
        )

    def test_width_factor_shrinks_to_one(self):
        f7 = small_sample_width_factor(7, 0.95)
        f100 = small_sample_width_factor(100, 0.95)
        assert f7 > f100 > 1.0
        assert math.isclose(f7, 2.4469 / 1.9600, abs_tol=1e-3)
        assert small_sample_width_factor(1, 0.95) == 1.0


class TestEstimators:
    def test_horvitz_thompson_exact_when_fully_sampled(self):
        plan = plan_systematic(4, 1)
        values = {0: 10.0, 1: 20.0, 2: 30.0, 3: 40.0}
        assert horvitz_thompson_total(plan, values) == 100.0

    def test_ht_scales_by_stratum_weight(self):
        plan = SamplePlan(
            num_intervals=10, strata=(Stratum(population=10, sampled=(0, 5)),)
        )
        assert horvitz_thompson_total(plan, {0: 2.0, 5: 4.0}) == 30.0

    def test_bootstrap_ci_brackets_point(self):
        plan = plan_systematic(40, 4)
        rng = random.Random(5)
        values = {i: 100.0 + rng.uniform(-10, 10) for i in plan.sampled}
        point, lo, hi = bootstrap_total_ci(plan, values, resamples=200)
        assert lo <= point <= hi
        assert math.isclose(point, horvitz_thompson_total(plan, values))

    def test_bootstrap_deterministic_in_seed(self):
        plan = plan_systematic(40, 4)
        rng = random.Random(5)
        values = {i: (100.0 + rng.uniform(-10, 10),) for i in plan.sampled}
        a = bootstrap_metric_ci(plan, values, lambda t: t[0], seed=3)
        b = bootstrap_metric_ci(plan, values, lambda t: t[0], seed=3)
        c = bootstrap_metric_ci(plan, values, lambda t: t[0], seed=4)
        assert a == b
        assert a != c

    def test_bootstrap_small_sample_widening(self):
        """The t-correction must widen the raw percentile interval for a
        handful of intervals (here 10 → factor t_9/z ≈ 1.155)."""
        plan = plan_systematic(40, 4)
        rng = random.Random(5)
        values = {i: (100.0 + rng.uniform(-10, 10),) for i in plan.sampled}
        point, lo, hi = bootstrap_metric_ci(plan, values, lambda t: t[0], seed=3)
        factor = small_sample_width_factor(len(values), 0.95)
        assert factor > 1.1
        # Re-derive the raw percentile interval and check the scaling.
        raw_half = (hi - lo) / factor
        assert raw_half < hi - lo

    def test_paired_metric(self):
        plan = plan_systematic(8, 2)
        values = {i: (100.0, 80.0) for i in plan.sampled}
        point, lo, hi = bootstrap_metric_ci(
            plan, values, lambda t: 100.0 * (t[0] - t[1]) / t[0]
        )
        assert math.isclose(point, 20.0)
        assert math.isclose(lo, 20.0) and math.isclose(hi, 20.0)

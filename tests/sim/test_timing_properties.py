"""Property-based tests of the timing model (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.timing import CoreConfig, TimingModel
from repro.sim.uop import Tag, Trace, TraceBuilder, Uop, UopKind


@st.composite
def traces(draw, max_uops=40):
    """Random well-formed traces: deps always point backwards."""
    n = draw(st.integers(min_value=1, max_value=max_uops))
    tb = TraceBuilder()
    for i in range(n):
        kind = draw(st.sampled_from(["alu", "load", "store", "branch"]))
        tag = draw(st.sampled_from(list(Tag)))
        if i == 0:
            deps = ()
        else:
            num_deps = draw(st.integers(min_value=0, max_value=min(3, i)))
            deps = tuple(
                sorted({draw(st.integers(min_value=0, max_value=i - 1)) for _ in range(num_deps)})
            )
        if kind == "alu":
            tb.alu(deps=deps, tag=tag)
        elif kind == "load":
            latency = draw(st.sampled_from([4, 12, 34, 200]))
            tb.load(0x1000 + i * 64, latency=latency, deps=deps, tag=tag)
        elif kind == "store":
            tb.store(0x1000 + i * 64, deps=deps, tag=tag)
        else:
            tb.branch(deps=deps, tag=tag, mispredict_penalty=draw(st.sampled_from([0, 14])))
    return tb.build()


TM = TimingModel(CoreConfig())


@given(traces())
@settings(max_examples=60, deadline=None)
def test_cycles_at_least_critical_path(trace):
    assert TM.run(trace).cycles >= TM.critical_path(trace)


@given(traces())
@settings(max_examples=60, deadline=None)
def test_cycles_at_least_critical_path_plus_overhead(trace):
    """Tighter bound: the per-call pipeline overhead is charged on top of
    the schedule, so it adds to the dependence-chain lower bound too."""
    assert TM.run(trace).cycles >= TM.critical_path(trace) + TM.config.pipeline_overhead


@given(traces())
@settings(max_examples=60, deadline=None)
def test_ipc_never_exceeds_issue_width(trace):
    result = TM.run(trace)
    assert result.ipc <= TM.config.issue_width


@given(traces())
@settings(max_examples=60, deadline=None)
def test_cycles_at_least_issue_bound(trace):
    bound = math.ceil(len(trace) / TM.config.issue_width)
    assert TM.run(trace).cycles >= bound


@given(traces())
@settings(max_examples=60, deadline=None)
def test_deterministic(trace):
    assert TM.run(trace).cycles == TM.run(trace).cycles


@given(traces(), st.sets(st.sampled_from(list(Tag)), min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_ablation_rarely_slower(trace, tags):
    """Removing uops essentially never increases the cycle count.

    Greedy list scheduling under port constraints exhibits Graham's
    anomalies — deleting work can occasionally lengthen the schedule by a
    few cycles (true of real out-of-order cores too; the paper notes its
    component estimates are "not strictly additive").  Bound the anomaly
    rather than forbid it."""
    full = TM.run(trace).cycles
    ablated = TM.run(trace.without_tags(tags)).cycles
    assert ablated <= full + max(4, full // 4)


@given(traces(), st.sets(st.sampled_from(list(Tag)), min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_ablation_never_slower_without_resource_limits(trace, tags):
    """With unbounded issue resources the schedule is the pure dependence
    critical path, and there removal is strictly monotone."""
    wide = TimingModel(
        CoreConfig(issue_width=10**6, load_ports=10**6, store_ports=10**6)
    )
    full = wide.run(trace).cycles
    ablated = wide.run(trace.without_tags(tags)).cycles
    assert ablated <= full


def _with_extra_edge(trace, target, source):
    """Copy of ``trace`` with a dependence ``source -> target`` added."""
    uops = []
    for i, u in enumerate(trace):
        deps = u.deps
        if i == target and source not in deps:
            deps = tuple(sorted(deps + (source,)))
        uops.append(Uop(kind=u.kind, deps=deps, addr=u.addr, latency=u.latency, tag=u.tag))
    return Trace(uops=uops)


@st.composite
def traces_with_edge(draw):
    """A trace of >= 2 uops plus a backward edge to add to it."""
    trace = draw(traces().filter(lambda t: len(t) >= 2))
    target = draw(st.integers(min_value=1, max_value=len(trace) - 1))
    source = draw(st.integers(min_value=0, max_value=target - 1))
    return trace, target, source


WIDE = TimingModel(CoreConfig(issue_width=10**6, load_ports=10**6, store_ports=10**6))


@given(traces_with_edge())
@settings(max_examples=60, deadline=None)
def test_extra_edge_monotone_without_resource_limits(case):
    """With unbounded issue resources the schedule is the pure dependence
    critical path, and adding a constraint is strictly monotone: cycles
    never decrease."""
    trace, target, source = case
    assert WIDE.run(_with_extra_edge(trace, target, source)).cycles >= WIDE.run(trace).cycles


@given(traces_with_edge())
@settings(max_examples=60, deadline=None)
def test_extra_edge_rarely_faster(case):
    """Under port constraints greedy list scheduling exhibits Graham's
    anomalies — adding a dependence edge can occasionally *shorten* the
    schedule by delaying an op past a port conflict.  Bound the anomaly
    rather than forbid it (mirroring test_ablation_rarely_slower)."""
    trace, target, source = case
    base = TM.run(trace).cycles
    constrained = TM.run(_with_extra_edge(trace, target, source)).cycles
    assert constrained >= base - max(4, base // 4)


@given(traces())
@settings(max_examples=60, deadline=None)
def test_issue_respects_dependences(trace):
    result = TM.run(trace)
    for i, uop in enumerate(trace):
        for dep in uop.deps:
            assert result.issue_times[i] >= result.ready_times[dep]


@given(traces())
@settings(max_examples=40, deadline=None)
def test_issue_width_never_exceeded(trace):
    result = TM.run(trace)
    per_cycle: dict[int, int] = {}
    for t in result.issue_times:
        per_cycle[t] = per_cycle.get(t, 0) + 1
    assert all(v <= TM.config.issue_width for v in per_cycle.values())


@given(traces())
@settings(max_examples=40, deadline=None)
def test_load_ports_never_exceeded(trace):
    result = TM.run(trace)
    per_cycle: dict[int, int] = {}
    for i, uop in enumerate(trace):
        if uop.kind in (UopKind.LOAD, UopKind.PREFETCH):
            t = result.issue_times[i]
            per_cycle[t] = per_cycle.get(t, 0) + 1
    assert all(v <= TM.config.load_ports for v in per_cycle.values())


@given(traces())
@settings(max_examples=40, deadline=None)
def test_without_tags_preserves_dep_validity(trace):
    ablated = trace.without_tags({Tag.SIZE_CLASS, Tag.SAMPLING})
    for i, uop in enumerate(ablated):
        assert all(0 <= d < i for d in uop.deps)

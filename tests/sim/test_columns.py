"""Columnar compilation: exact equivalence with the object scheduler.

Templates are harvested from a real replay (the interner's export), so the
columns under test are the ones the engine actually walks — every uop
kind, store-buffer flag, CSR dependence shape, and tag mix the allocators
emit.  Each template must schedule to the identical
:class:`~repro.sim.timing.TimingResult` through the flat arrays, with and
without tag ablation, and the compiled columns must survive pickling
(warm banks ship templates across processes).
"""

import os
import pickle

import pytest

from repro.sim.columns import (
    columns_of,
    compile_trace,
    removed_tag_mask,
    schedule_columns,
    schedule_columns_ablated,
)
from repro.sim.uop import Tag


def _templates():
    """Interned templates (with machine) from a short mixed replay."""
    saved = os.environ.get("REPRO_ENGINE")
    os.environ.pop("REPRO_ENGINE", None)  # columnar default
    try:
        from repro.harness.experiments import make_mallacc
        from repro.harness.runner import run_workload
        from repro.workloads import MACRO_WORKLOADS

        alloc = make_mallacc(intern_traces=True)
        wl = MACRO_WORKLOADS["400.perlbench"]
        run_workload(alloc, wl.ops(seed=7, num_ops=300), name=wl.name)
        return alloc.machine, list(alloc.machine.interner.export_templates().values())
    finally:
        if saved is not None:
            os.environ["REPRO_ENGINE"] = saved


MACHINE, TEMPLATES = _templates()

#: Tag sets the limit-study ablations actually use, plus a mixed one.
ABLATIONS = [
    frozenset({Tag.SIZE_CLASS}),
    frozenset({Tag.PUSH_POP}),
    frozenset({Tag.SAMPLING}),
    frozenset({Tag.CALL_OVERHEAD}),
    frozenset({Tag.SIZE_CLASS, Tag.PUSH_POP, Tag.SAMPLING}),
]


def test_harvest_is_representative():
    assert len(TEMPLATES) >= 10
    kinds = {uop.kind for t in TEMPLATES for uop in t.uops}
    assert len(kinds) >= 4  # loads, stores, ALU, branches at minimum


def test_schedule_columns_matches_object_scheduler():
    timing = MACHINE.timing
    for trace in TEMPLATES:
        ref = timing._schedule(trace)
        completion, issue, ready = schedule_columns(columns_of(trace), timing.config)
        assert completion + timing.config.pipeline_overhead == ref.cycles, trace
        assert tuple(issue) == ref.issue_times
        assert tuple(ready) == ref.ready_times


@pytest.mark.parametrize("tags", ABLATIONS, ids=lambda t: "+".join(sorted(x.name for x in t)))
def test_ablated_schedule_matches_without_tags(tags):
    """Zero-latency pass-throughs must equal the reference's transitive
    dependence rewiring — on every real template, removed uops or not."""
    timing = MACHINE.timing
    mask = removed_tag_mask(tags)
    for trace in TEMPLATES:
        ref = timing._schedule(trace.without_tags(tags))
        cols = columns_of(trace)
        if cols.tag_mask & mask:
            completion, _, _ = schedule_columns_ablated(cols, mask, timing.config)
        else:
            completion, _, _ = schedule_columns(cols, timing.config)
        assert completion + timing.config.pipeline_overhead == ref.cycles


class TestPickle:
    def test_columns_roundtrip(self):
        trace = TEMPLATES[0]
        cols = columns_of(trace)
        clone = pickle.loads(pickle.dumps(cols))
        assert clone.n == cols.n
        assert clone.kinds == cols.kinds
        assert clone.dep_indptr == cols.dep_indptr
        assert clone.dep_indices == cols.dep_indices
        assert clone.tag_mask == cols.tag_mask
        a = schedule_columns(cols, MACHINE.timing.config)
        b = schedule_columns(clone, MACHINE.timing.config)
        assert a == b

    def test_template_pickles_with_columns(self):
        """WarmBank pickles whole templates; compiled columns (and the
        lazy-compile marker) must ride along and stay usable."""
        trace = TEMPLATES[0]
        compile_trace(trace)
        assert getattr(trace, "_columns", None) is not None
        clone = pickle.loads(pickle.dumps(trace))
        cols = getattr(clone, "_columns", None)
        assert cols is not None
        a = schedule_columns(columns_of(trace), MACHINE.timing.config)
        b = schedule_columns(cols, MACHINE.timing.config)
        assert a == b

    def test_uncompiled_template_pickles_clean(self):
        """A template that was only scheduled once (interpretive pass) has
        no columns yet; it must still pickle and compile on the other side."""
        fresh = pickle.loads(pickle.dumps(TEMPLATES[0]))
        fresh.__dict__.pop("_columns", None)
        fresh.__dict__.pop("_sched_once", None)
        clone = pickle.loads(pickle.dumps(fresh))
        assert getattr(clone, "_columns", None) is None
        ref = MACHINE.timing._schedule(fresh)
        completion, _, _ = schedule_columns(
            columns_of(clone), MACHINE.timing.config
        )
        assert completion + MACHINE.timing.config.pipeline_overhead == ref.cycles

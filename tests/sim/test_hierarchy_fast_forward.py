"""Inclusive back-invalidation + fast-path/reference equivalence tests.

Covers the two hierarchy-level guarantees this round of optimizations rests
on:

* **Inclusion** (the satellite bug fix): an L3 eviction removes the victim
  line from L1 and L2 as well — on the generic probe chain, the inlined
  plain fast path, and the reference cache implementation alike.
* **Equivalence**: the inlined dict-walk (``_access_fast_plain``), the
  hooked variant, the generic chain, and the O(assoc) reference caches all
  produce identical latencies, line movement, and counters on identical
  access streams.
"""

import os
import random
from contextlib import contextmanager

import pytest

from repro.sim.cache import CacheConfig, ReferenceSetAssociativeCache, SetAssociativeCache
from repro.sim.hierarchy import CacheHierarchy, HierarchyConfig


@contextmanager
def _cache_impl(impl):
    saved = os.environ.get("REPRO_CACHE_IMPL")
    if impl is None:
        os.environ.pop("REPRO_CACHE_IMPL", None)
    else:
        os.environ["REPRO_CACHE_IMPL"] = impl
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE_IMPL", None)
        else:
            os.environ["REPRO_CACHE_IMPL"] = saved


#: One set per level; inner levels roomy (32 ways), L3 tiny (4 ways), so an
#: L3 eviction happens while the victim still fits comfortably inside.
TINY = HierarchyConfig(
    l1=CacheConfig("L1", 32 * 64, 32, latency=4),
    l2=CacheConfig("L2", 32 * 64, 32, latency=12),
    l3=CacheConfig("L3", 4 * 64, 4, latency=34),
    dram_latency=200,
)


class TestInclusiveBackInvalidation:
    @pytest.mark.parametrize("impl", [None, "reference"])
    def test_l3_eviction_clears_inner_levels(self, impl):
        with _cache_impl(impl):
            h = CacheHierarchy(TINY)
        h.access(0x0)
        assert h.l1.contains(0x0) and h.l2.contains(0x0) and h.l3.contains(0x0)
        # Fill the single 4-way L3 set past capacity: line 0 is the LRU
        # victim even though L1/L2 (32 ways) still have room for it.
        for i in range(1, 5):
            h.access(i * 64)
        assert not h.l3.contains(0x0)
        assert not h.l2.contains(0x0), "L3 eviction must back-invalidate L2"
        assert not h.l1.contains(0x0), "L3 eviction must back-invalidate L1"

    def test_generic_chain_matches_fast_path(self):
        """The non-fast access() chain (exercised via a mixed-line-size
        geometry gate) performs the same back-invalidation."""
        with _cache_impl(None):
            h = CacheHierarchy(TINY)
        # Force the generic chain while keeping the same O(1) caches.
        h._fast = False
        h._fast_demand = False
        h.demand_access = h.access
        h.access(0x0)
        for i in range(1, 5):
            h.access(i * 64)
        assert not h.l3.contains(0x0)
        assert not h.l2.contains(0x0)
        assert not h.l1.contains(0x0)

    def test_touch_lines_batch_respects_inclusion(self):
        with _cache_impl(None):
            h = CacheHierarchy(TINY)
        assert h._fast_demand
        h.touch_lines(0, 5, stride=64)  # batched walk evicts line 0 from L3
        assert not h.l3.contains(0x0)
        assert not h.l2.contains(0x0)
        assert not h.l1.contains(0x0)

    def test_no_resident_inner_line_is_missing_from_l3(self):
        """Global inclusion invariant after a random mixed stream."""
        with _cache_impl(None):
            h = CacheHierarchy()
        rng = random.Random(11)
        for _ in range(4000):
            h.access(rng.randrange(0, 1 << 24) & ~0x7)
        h.touch_lines(1 << 22, 500, stride=64)
        for level in (h.l1, h.l2):
            for ways in level._sets:
                for line in ways:
                    assert h.l3.contains(line << 6), (
                        f"line {line:#x} resident in {level.config.name} "
                        "but not in the inclusive L3"
                    )


def _stream(seed, n=6000):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        r = rng.random()
        if r < 0.6:
            out.append(rng.randrange(0, 1 << 16))  # hot region
        elif r < 0.9:
            out.append(rng.randrange(0, 1 << 21))  # warm
        else:
            out.append(rng.randrange(0, 1 << 26))  # cold
    return out


def _state(h):
    return {
        "lines": [[sorted(w) for w in level._sets] for level in h.levels],
        "counters": [(level.hits, level.misses) for level in h.levels],
        "dram": h.dram_accesses,
    }


class TestFastPathEquivalence:
    def test_cache_classes_selected_by_env(self):
        with _cache_impl(None):
            assert type(CacheHierarchy().l1) is SetAssociativeCache
        with _cache_impl("reference"):
            h = CacheHierarchy()
            assert type(h.l1) is ReferenceSetAssociativeCache
            assert not h._fast

    @pytest.mark.parametrize("seed", [1, 2])
    def test_random_stream_equivalence(self, seed):
        with _cache_impl(None):
            fast = CacheHierarchy()
        with _cache_impl("reference"):
            ref = CacheHierarchy()
        assert fast._fast_demand and not ref._fast
        lats_fast = [fast.demand_access(a) for a in _stream(seed)]
        lats_ref = [ref.demand_access(a) for a in _stream(seed)]
        assert lats_fast == lats_ref
        assert _state(fast) == _state(ref)

    def test_access_and_demand_access_agree(self):
        """access() (hook-dispatched) and demand_access (pre-dispatched)
        run the identical inlined walk on a plain fast hierarchy."""
        a = CacheHierarchy()
        b = CacheHierarchy()
        stream = _stream(3, n=2000)
        assert [a.access(addr) for addr in stream] == [
            b.demand_access(addr) for addr in stream
        ]
        assert _state(a) == _state(b)

    def test_antagonist_and_flush_hit_fast_state(self):
        """Mutations through the cache objects (antagonize, flush) are
        visible to the inlined walk — they share the same set dicts."""
        h = CacheHierarchy()
        # Two lines in one L1 set (line stride = 64 sets * 64 B), the second
        # refreshed, so the first is the less-used half antagonize evicts.
        h.demand_access(0x1000)
        h.demand_access(0x2000)
        h.demand_access(0x2000)
        h.antagonize()
        assert not h.l1.contains(0x1000)
        # The two lines sit in different L2 sets (one line each), so the L2
        # half-eviction removes neither; the refetch is an L2 hit.
        lat = h.demand_access(0x1000)
        assert lat == h.config.l2.latency
        h.flush_all()
        assert h.demand_access(0x1000) == h.config.dram_latency

"""Tests for the dependency-graph timing model."""

import pytest

from repro.sim.timing import CoreConfig, TimingModel
from repro.sim.uop import Tag, Trace, TraceBuilder


def model(**kwargs):
    return TimingModel(CoreConfig(**kwargs))


class TestBasics:
    def test_empty_trace_costs_overhead(self):
        tm = model(pipeline_overhead=2)
        assert tm.run(Trace()).cycles == 2

    def test_single_alu(self):
        tm = model(pipeline_overhead=0)
        tb = TraceBuilder()
        tb.alu()
        assert tm.run(tb.build()).cycles == 1

    def test_dependent_chain_serializes(self):
        tm = model(pipeline_overhead=0)
        tb = TraceBuilder()
        a = tb.alu()
        b = tb.alu(deps=(a,))
        tb.alu(deps=(b,))
        assert tm.run(tb.build()).cycles == 3

    def test_independent_ops_overlap(self):
        tm = model(pipeline_overhead=0, issue_width=4)
        tb = TraceBuilder()
        for _ in range(4):
            tb.alu()
        assert tm.run(tb.build()).cycles == 1

    def test_issue_width_limits_parallelism(self):
        tm = model(pipeline_overhead=0, issue_width=2)
        tb = TraceBuilder()
        for _ in range(6):
            tb.alu()
        assert tm.run(tb.build()).cycles == 3

    def test_load_latency_counts(self):
        tm = model(pipeline_overhead=0)
        tb = TraceBuilder()
        tb.load(0x1000, latency=34)
        assert tm.run(tb.build()).cycles == 34

    def test_dependent_loads_add_latencies(self):
        tm = model(pipeline_overhead=0)
        tb = TraceBuilder()
        a = tb.load(0x1000, latency=4)
        tb.load(0x2000, latency=4, deps=(a,))
        assert tm.run(tb.build()).cycles == 8


class TestStoresAndPrefetches:
    def test_store_is_buffered(self):
        """A store never extends the critical path beyond its issue+1."""
        tm = model(pipeline_overhead=0)
        tb = TraceBuilder()
        a = tb.alu()
        tb.store(0x1000, deps=(a,))
        assert tm.run(tb.build()).cycles == 2

    def test_store_miss_does_not_stall(self):
        tm = model(pipeline_overhead=0)
        tb = TraceBuilder()
        tb.store(0x1000)
        trace = tb.build()
        trace.uops[0].latency = 200  # a DRAM-bound store
        assert tm.run(trace).cycles == 1

    def test_prefetch_commits_immediately(self):
        tm = model(pipeline_overhead=0)
        tb = TraceBuilder()
        tb.prefetch(0x1000)
        trace = tb.build()
        trace.uops[0].latency = 200
        assert tm.run(trace).cycles == 1

    def test_load_depending_on_store_waits_for_issue(self):
        tm = model(pipeline_overhead=0)
        tb = TraceBuilder()
        s = tb.store(0x1000)
        tb.load(0x1000, latency=4, deps=(s,))
        # store ready (forwarding) at 1, load 1+4.
        assert tm.run(tb.build()).cycles == 5


class TestPorts:
    def test_load_ports_bound(self):
        tm = model(pipeline_overhead=0, issue_width=4, load_ports=2)
        tb = TraceBuilder()
        for i in range(4):
            tb.load(0x1000 + i * 64, latency=4)
        # Two loads at cycle 0, two at cycle 1 -> last ready at 5.
        assert tm.run(tb.build()).cycles == 5

    def test_store_ports_bound(self):
        tm = model(pipeline_overhead=0, issue_width=4, store_ports=1)
        tb = TraceBuilder()
        for i in range(3):
            tb.store(0x1000 + i * 64)
        assert tm.run(tb.build()).cycles == 3

    def test_alu_not_limited_by_load_ports(self):
        tm = model(pipeline_overhead=0, issue_width=4, load_ports=1)
        tb = TraceBuilder()
        tb.load(0x1000, latency=4)
        for _ in range(3):
            tb.alu()
        assert tm.run(tb.build()).cycles == 4


class TestResult:
    def test_issue_and_ready_times_lengths(self):
        tm = model()
        tb = TraceBuilder()
        tb.alu()
        tb.alu()
        r = tm.run(tb.build())
        assert r.num_uops == 2
        assert len(r.issue_times) == len(r.ready_times) == 2

    def test_ipc(self):
        tm = model(pipeline_overhead=0)
        tb = TraceBuilder()
        for _ in range(4):
            tb.alu()
        r = tm.run(tb.build())
        assert r.ipc == pytest.approx(4.0)

    def test_deterministic(self):
        tm = model()
        tb = TraceBuilder()
        a = tb.alu()
        tb.load(0x1000, latency=12, deps=(a,))
        trace = tb.build()
        assert tm.run(trace).cycles == tm.run(trace).cycles


class TestCriticalPath:
    def test_lower_bounds_schedule(self):
        tm = model(pipeline_overhead=0, issue_width=1)
        tb = TraceBuilder()
        for _ in range(8):
            tb.alu()
        trace = tb.build()
        assert tm.critical_path(trace) <= tm.run(trace).cycles

    def test_chain_equals_critical_path(self):
        tm = model(pipeline_overhead=0)
        tb = TraceBuilder()
        a = tb.load(0x1000, latency=4)
        b = tb.load(0x2000, latency=4, deps=(a,))
        tb.alu(deps=(b,))
        trace = tb.build()
        assert tm.critical_path(trace) == 9
        assert tm.run(trace).cycles == 9

    def test_fast_path_anchor(self):
        """The paper's anchor: the modeled malloc fast path runs 18-20
        cycles (Section 3.3); reproduce the chain shape here."""
        tm = model()
        tb = TraceBuilder()
        idx1 = tb.alu(tag=Tag.SIZE_CLASS)
        idx2 = tb.alu(deps=(idx1,), tag=Tag.SIZE_CLASS)
        cls = tb.load(0x1000, latency=4, deps=(idx2,), tag=Tag.SIZE_CLASS)
        lea = tb.alu(deps=(cls,))
        head = tb.load(0x2000, latency=4, deps=(lea,), tag=Tag.PUSH_POP)
        nxt = tb.load(0x3000, latency=4, deps=(head,), tag=Tag.PUSH_POP)
        tb.store(0x2000, deps=(nxt,), tag=Tag.PUSH_POP)
        cycles = tm.run(tb.build()).cycles
        assert 15 <= cycles <= 20


class TestROB:
    def test_small_rob_limits_overlap(self):
        """A long stream of independent loads cannot all be in flight at
        once when the window is tiny."""
        wide = model(pipeline_overhead=0, issue_width=4, load_ports=4, rob_size=10**6)
        tiny = model(pipeline_overhead=0, issue_width=4, load_ports=4, rob_size=4)
        tb = TraceBuilder()
        for i in range(32):
            tb.load(0x1000 + i * 64, latency=34)
        trace = tb.build()
        assert tiny.run(trace).cycles > wide.run(trace).cycles

    def test_default_rob_never_binds_fast_path(self):
        """Fast-path-sized traces (tens of uops) fit comfortably in a
        192-entry window: same schedule with and without the bound."""
        default = model(pipeline_overhead=0)
        unbounded = model(pipeline_overhead=0, rob_size=10**6)
        tb = TraceBuilder()
        prev = tb.alu()
        for i in range(40):
            prev = tb.load(0x1000 + i * 64, latency=4, deps=(prev,))
        trace = tb.build()
        assert default.run(trace).cycles == unbounded.run(trace).cycles

    def test_retirement_in_order(self):
        """An op behind a long-latency elder cannot free its slot early."""
        tiny = model(pipeline_overhead=0, issue_width=4, load_ports=4, rob_size=2)
        tb = TraceBuilder()
        tb.load(0x1000, latency=200)  # DRAM miss at the head
        for i in range(6):
            tb.alu()
        trace = tb.build()
        # ALU #2 onward must wait for the miss to retire.
        assert tiny.run(trace).cycles >= 200


class TestSharedResults:
    """Memoized TimingResults are shared between trace-cache hits; the
    per-uop time vectors are tuples so no caller can corrupt a later hit."""

    def _trace(self):
        tb = TraceBuilder()
        a = tb.alu()
        tb.load(0x1000, latency=12, deps=(a,))
        tb.store(0x2000, deps=(a,))
        return tb.build()

    def test_times_are_tuples(self):
        r = model().run(self._trace())
        assert isinstance(r.issue_times, tuple)
        assert isinstance(r.ready_times, tuple)
        with pytest.raises(TypeError):
            r.issue_times[0] = 99

    def test_unmemoized_schedule_also_returns_tuples(self):
        r = model(trace_cache_entries=0)._schedule(self._trace())
        assert isinstance(r.issue_times, tuple)
        assert isinstance(r.ready_times, tuple)

    def test_equal_fingerprints_share_one_result_object(self):
        tm = model()
        r1 = tm.run(self._trace())
        r2 = tm.run(self._trace())  # separately built, same fingerprint
        assert r1 is r2
        assert tm.cache_stats.hits == 1

    def test_default_result_vectors_empty_tuples(self):
        from repro.sim.timing import TimingResult

        r = TimingResult(cycles=2)
        assert r.issue_times == () and r.ready_times == ()
        assert r.num_uops == 0

"""Differential fuzz: LazyRingHierarchy vs the eager CacheHierarchy.

The lazy ring hierarchy defers applying ring bursts to L1/L2 per set and
reconstructs exact state on demand (merges, interval L3, closed-form burst
counters).  This suite drives both implementations with one randomized
stream of every entry point — cursor bursts, deferred window flushes,
demand accesses, L3-pressure sets, probes, antagonize — asserting equal
latencies and counters op by op, and (after forced materialization) equal
per-set resident lines in exact LRU order.

Seeds 4 and 5 are pinned because they exercise the ``_l2_survives``
inclusion guard (the closed-form bound that skips an L2 merge on an L1 hit
when no pending fill can evict the line): seed 4 produces guard *passes*
(merge skipped, state still exact), seed 5 a refusal (the bound can't
prove survival, so the merge runs).  A guard bug shows up here as a
counter or LRU-order divergence.
"""

import random

import pytest

from repro.sim.hierarchy import CacheHierarchy
from repro.sim.lazyhier import (
    RING_BASE,
    RING_BYTES,
    RING_LINES,
    LazyRingHierarchy,
)

ALLOC_BASE = 0x2000_0000_0000  # far from the ring window


def _counters(h):
    return (
        h.l1.hits, h.l1.misses,
        h.l2.hits, h.l2.misses,
        h.l3.hits, h.l3.misses,
        h.dram_accesses,
    )


def _contents(h):
    # key order == LRU order for both dict- and stamp-valued sets
    return (
        [list(s) for s in h.l1._sets],
        [list(s) for s in h.l2._sets],
        [list(s) for s in h.l3._sets],
    )


def run_stream(seed, n_ops):
    """Drive both hierarchies with one op stream; assert equivalence at
    every step and full contents at the end.  Returns the counters."""
    rng = random.Random(seed)
    ref = CacheHierarchy()
    lazy = LazyRingHierarchy()
    assert lazy._lazy, "default geometry should engage the lazy path"

    offset = 0          # ring byte cursor (AppTraffic style)
    pending = 0         # deferred lines (sampled-flush model)
    hot = [ALLOC_BASE + 64 * rng.randrange(4096) for _ in range(24)]
    # a set of alloc lines all mapping to one sigma3, to build L3 pressure
    sigma3 = rng.randrange(8192)
    pressure = [
        (ALLOC_BASE + ((sigma3 - (ALLOC_BASE >> 6)) % 8192) * 64) + k * 8192 * 64
        for k in range(22)
    ]

    for op in range(n_ops):
        kind = rng.random()
        if kind < 0.35:
            # cursor-shaped ring burst
            lines = rng.choice([1, 3, 10, 16, 50, 120, 300, 300, 1000, 5000])
            ref.touch_lines(RING_BASE + offset, lines)
            lazy.touch_lines(RING_BASE + offset, lines)
            offset = (offset + lines * 64) % RING_BYTES
        elif kind < 0.40:
            # deferred traffic, later flushed as a window
            lines = rng.choice([10, 50, 300, 2000])
            pending += lines
            offset = (offset + lines * 64) % RING_BYTES
        elif kind < 0.45 and pending:
            n = min(pending, RING_LINES)
            start = (offset // 64 - n) % RING_LINES
            if start + n <= RING_LINES:
                ranges = [(RING_BASE + start * 64, n)]
            else:
                head = RING_LINES - start
                ranges = [(RING_BASE + start * 64, head), (RING_BASE, n - head)]
            ref.touch_line_window(ranges)
            lazy.touch_line_window(ranges)
            pending = 0
        elif kind < 0.75:
            # allocator accesses: mix of hot and fresh lines
            for _ in range(rng.randrange(1, 6)):
                if rng.random() < 0.6:
                    addr = rng.choice(hot)
                else:
                    addr = ALLOC_BASE + 64 * rng.randrange(200000)
                lr = ref.demand_access(addr)
                ll = lazy.demand_access(addr)
                assert lr == ll, f"op {op}: access({addr:#x}) {lr} != {ll}"
        elif kind < 0.85:
            # L3-pressure accesses (single sigma3)
            for addr in rng.sample(pressure, rng.randrange(4, 22)):
                lr = ref.demand_access(addr)
                ll = lazy.demand_access(addr)
                assert lr == ll, f"op {op}: pressure({addr:#x}) {lr} != {ll}"
        elif kind < 0.93:
            addr = rng.choice(
                [rng.choice(hot),
                 RING_BASE + 64 * rng.randrange(RING_LINES),
                 ALLOC_BASE + 64 * rng.randrange(200000)]
            )
            lr = ref.probe_latency(addr)
            ll = lazy.probe_latency(addr)
            assert lr == ll, f"op {op}: probe({addr:#x}) {lr} != {ll}"
        else:
            er = ref.antagonize()
            el = lazy.antagonize()
            assert er == el, f"op {op}: antagonize {er} != {el}"

        cr, cl = _counters(ref), _counters(lazy)
        assert cr == cl, f"op {op}: counters {cr} != {cl}"

    # final: full materialization, exact contents + order
    lazy._degrade()
    assert _counters(ref) == _counters(lazy)
    rr, ll = _contents(ref), _contents(lazy)
    for lvl, (a, b) in enumerate(zip(rr, ll)):
        for sidx, (sa, sb) in enumerate(zip(a, b)):
            assert sa == sb, (
                f"L{lvl+1} set {sidx}: ref {sa[:12]} != lazy {sb[:12]} "
                f"(lens {len(sa)}/{len(sb)})"
            )
    return _counters(ref)


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_stream(seed):
    run_stream(seed, 120)


def test_long_stream():
    run_stream(42, 300)


class TestL2SurvivalGuard:
    """Seeds known to route through ``_l2_survives``, with the guard's
    decisions spied on so regressions that silently stop exercising it (or
    flip its answers) fail loudly."""

    @pytest.mark.parametrize("seed,expect_pass,expect_refuse", [
        (4, True, False),   # bound proves survival: merges skipped
        (5, False, True),   # bound can't prove it: merge must run
    ])
    def test_guard_decisions(self, seed, expect_pass, expect_refuse, monkeypatch):
        decisions = []
        orig = LazyRingHierarchy._l2_survives

        def spy(self, line, sigma):
            verdict = orig(self, line, sigma)
            decisions.append(verdict)
            return verdict

        monkeypatch.setattr(LazyRingHierarchy, "_l2_survives", spy)
        run_stream(seed, 120)
        assert decisions, "stream no longer reaches the inclusion guard"
        assert (True in decisions) == expect_pass
        assert (False in decisions) == expect_refuse

"""Tests for the three-level cache hierarchy."""

import pytest

from repro.sim.cache import CacheConfig
from repro.sim.hierarchy import CacheHierarchy, HierarchyConfig


@pytest.fixture
def h():
    return CacheHierarchy()


class TestLatencies:
    def test_cold_access_costs_dram(self, h):
        assert h.access(0x10000) == h.config.dram_latency

    def test_second_access_hits_l1(self, h):
        h.access(0x10000)
        assert h.access(0x10000) == h.config.l1.latency

    def test_l2_hit_after_l1_eviction(self, h):
        h.access(0x10000)
        h.l1.invalidate(0x10000)
        assert h.access(0x10000) == h.config.l2.latency

    def test_l3_hit_after_l1_l2_eviction(self, h):
        h.access(0x10000)
        h.l1.invalidate(0x10000)
        h.l2.invalidate(0x10000)
        assert h.access(0x10000) == h.config.l3.latency

    def test_haswell_default_latencies(self, h):
        assert h.config.l1.latency == 4
        assert h.config.l2.latency == 12
        assert h.config.l3.latency == 34  # quoted in the paper (Section 6.1)

    def test_fills_propagate_to_all_levels(self, h):
        h.access(0x10000)
        assert h.l1.contains(0x10000)
        assert h.l2.contains(0x10000)
        assert h.l3.contains(0x10000)

    def test_write_moves_lines_like_read(self, h):
        h.access(0x10000, write=True)
        assert h.l1.contains(0x10000)
        assert h.access(0x10000) == h.config.l1.latency


class TestProbe:
    def test_probe_matches_access_without_moving(self, h):
        h.access(0x10000)
        h.l1.invalidate(0x10000)
        assert h.probe_latency(0x10000) == h.config.l2.latency
        assert not h.l1.contains(0x10000)  # probe did not fill

    def test_probe_cold(self, h):
        assert h.probe_latency(0x999000) == h.config.dram_latency


class TestAntagonizeAndTraffic:
    def test_antagonize_evicts_l1_l2_only(self, h):
        # Two lines in the same L1 set (64 sets * 64B = 4 KB stride).
        h.access(0x10000)
        h.access(0x10000 + 4096)
        evicted = h.antagonize()
        assert evicted >= 1
        assert h.l3.contains(0x10000)  # L3 untouched by the antagonist

    def test_touch_lines_streams(self, h):
        h.touch_lines(0x100000, 16)
        for i in range(16):
            assert h.l1.contains(0x100000 + i * 64)

    def test_prefetch_fills(self, h):
        lat = h.prefetch(0x20000)
        assert lat == h.config.dram_latency
        assert h.access(0x20000) == h.config.l1.latency

    def test_flush_all(self, h):
        h.access(0x10000)
        h.flush_all()
        assert h.access(0x10000) == h.config.dram_latency

    def test_dram_access_count(self, h):
        h.access(0x10000)
        h.access(0x10000)
        assert h.dram_accesses == 1

    def test_stats_keys(self, h):
        h.access(0x10000)
        s = h.stats()
        assert set(s) == {"l1_miss_rate", "l2_miss_rate", "l3_miss_rate", "dram_accesses"}


class TestCustomGeometry:
    def test_custom_config(self):
        cfg = HierarchyConfig(
            l1=CacheConfig("L1", 1024, 2, latency=3),
            l2=CacheConfig("L2", 4096, 4, latency=10),
            l3=CacheConfig("L3", 16384, 8, latency=30),
            dram_latency=150,
        )
        h = CacheHierarchy(cfg)
        assert h.access(0x40000) == 150
        assert h.access(0x40000) == 3

    def test_inclusive_capacity_pressure(self):
        """Streaming far beyond L1 capacity leaves recent lines resident."""
        h = CacheHierarchy()
        for i in range(2048):  # 128 KB through a 32 KB L1
            h.access(0x100000 + i * 64)
        assert h.l1.contains(0x100000 + 2047 * 64)
        assert not h.l1.contains(0x100000)
        assert h.l2.contains(0x100000)  # still fits in 256 KB L2

"""Tests for the multi-core coherence substrate."""

import pytest

from repro.alloc.constants import AllocatorConfig
from repro.alloc.multithread import MultiThreadAllocator
from repro.sim.multicore import (
    CoherenceDirectory,
    CoherentHierarchy,
    SharedSubstrate,
    build_core_machines,
)


@pytest.fixture
def duo():
    machines, substrate = build_core_machines(2)
    return machines[0].hierarchy, machines[1].hierarchy, substrate


class TestCoherence:
    def test_private_l1_l2(self, duo):
        a, b, _ = duo
        a.access(0x1000)
        assert a.l1.contains(0x1000)
        assert not b.l1.contains(0x1000)

    def test_shared_l3(self, duo):
        a, b, _ = duo
        assert a.l3 is b.l3
        a.access(0x1000)  # DRAM -> fills shared L3
        assert b.access(0x1000) == b.config.l3.latency  # L3 hit, no writer

    def test_write_invalidates_remote_copies(self, duo):
        a, b, sub = duo
        a.access(0x1000)
        b.access(0x1000, write=True)
        assert not a.l1.contains(0x1000)
        assert sub.directory.stats.invalidations >= 1

    def test_read_of_remote_dirty_pays_transfer(self, duo):
        a, b, sub = duo
        a.access(0x1000, write=True)
        base = b.config.l3.latency
        latency = b.access(0x1000)
        assert latency >= base + sub.directory.transfer_penalty

    def test_reread_after_transfer_is_shared(self, duo):
        a, b, sub = duo
        a.access(0x1000, write=True)
        b.access(0x1000)  # pays the transfer, line becomes shared
        transfers = sub.directory.stats.remote_transfers
        b.access(0x1000)
        a.access(0x1000)
        assert sub.directory.stats.remote_transfers == transfers

    def test_write_after_remote_write_pays_upgrade(self, duo):
        a, b, sub = duo
        a.access(0x1000, write=True)
        before = sub.directory.stats.transfer_cycles
        b.access(0x1000, write=True)
        assert sub.directory.stats.transfer_cycles > before

    def test_own_rewrites_free(self, duo):
        a, _, sub = duo
        a.access(0x1000, write=True)
        before = sub.directory.stats.remote_transfers
        a.access(0x1000, write=True)
        a.access(0x1000)
        assert sub.directory.stats.remote_transfers == before

    def test_different_lines_independent(self, duo):
        a, b, sub = duo
        a.access(0x1000, write=True)
        assert b.access(0x2000) >= 0
        assert sub.directory.stats.remote_transfers == 0


class TestBuildMachines:
    def test_shared_memory_and_address_space(self):
        machines, _ = build_core_machines(3)
        machines[0].memory.write_word(0x1000, 42)
        assert machines[1].memory.read_word(0x1000) == 42
        assert machines[0].address_space is machines[2].address_space

    def test_private_tlbs(self):
        machines, _ = build_core_machines(2)
        machines[0].tlb.access(0x1000)
        assert not machines[1].tlb.contains(0x1000)

    def test_custom_substrate(self):
        sub = SharedSubstrate()
        machines, out = build_core_machines(2, substrate=sub)
        assert out is sub
        assert machines[0].hierarchy.directory is sub.directory


class TestCoherentAllocator:
    def _producer_consumer(self, coherent):
        mt = MultiThreadAllocator(
            2, config=AllocatorConfig(release_rate=0), coherent=coherent
        )
        queue = []
        cycles = 0
        for _ in range(800):
            p, rec = mt.malloc(0, 64)
            cycles += rec.cycles
            queue.append(p)
            if len(queue) > 16:
                cycles += mt.free(1, queue.pop(0)).cycles
        mt.check_conservation()
        return mt, cycles

    def test_cross_thread_frees_generate_coherence_traffic(self):
        mt, _ = self._producer_consumer(coherent=True)
        stats = mt.coherence_stats()
        assert stats.invalidations > 0
        assert stats.remote_transfers > 0

    def test_coherent_mode_costs_more(self):
        """Line ping-pong between producer and consumer is not free."""
        _, flat = self._producer_consumer(coherent=False)
        _, coherent = self._producer_consumer(coherent=True)
        assert coherent > flat

    def test_flat_mode_reports_no_stats(self):
        mt, _ = self._producer_consumer(coherent=False)
        assert mt.coherence_stats() is None

    def test_pointer_stream_identical_across_modes(self):
        def run(coherent):
            mt = MultiThreadAllocator(
                2, config=AllocatorConfig(release_rate=0), coherent=coherent
            )
            out = []
            queue = []
            for _ in range(400):
                p, _ = mt.malloc(0, 48)
                out.append(p)
                queue.append(p)
                if len(queue) > 8:
                    mt.free(1, queue.pop(0))
            return out

        assert run(False) == run(True)

    def test_accelerated_coherent_combination(self):
        mt = MultiThreadAllocator(
            2,
            config=AllocatorConfig(release_rate=0),
            coherent=True,
            accelerated=True,
        )
        queue = []
        for _ in range(500):
            p, _ = mt.malloc(0, 64)
            queue.append(p)
            if len(queue) > 8:
                mt.free(1, queue.pop(0))
        for view in mt.threads:
            view.malloc_cache.check_invariants(mt.machine.memory)
        mt.check_conservation()


class TestInclusiveBroadcast:
    def test_shared_l3_eviction_invalidates_every_core(self, duo):
        """The shared L3 is inclusive of *all* cores' private levels: its
        eviction must be broadcast, not applied only to the evicting core."""
        a, b, _ = duo
        stride = a.l3._num_sets * 64  # same-L3-set aliasing stride
        a.access(0x0)
        assert a.l1.contains(0x0) and a.l2.contains(0x0)
        # Core B streams enough aliasing lines through the shared set to
        # evict core A's line from L3.
        for i in range(1, a.l3._assoc + 1):
            b.access(i * stride)
        assert not a.l3.contains(0x0)
        assert not a.l2.contains(0x0), "broadcast must reach core A's L2"
        assert not a.l1.contains(0x0), "broadcast must reach core A's L1"

    def test_coherent_hierarchy_never_uses_plain_inlined_walk(self, duo):
        """CoherentHierarchy must keep its access() wrapper (directory
        coherence) and its broadcast hook: the plain fully-inlined walk
        would silently skip both."""
        a, _, _ = duo
        assert not a._fast_demand
        assert a.demand_access.__func__ is CoherentHierarchy.access

"""Tests for micro-op traces, the builder, and tag ablation."""

import pytest

from repro.sim.uop import LIMIT_STUDY_TAGS, Tag, Trace, TraceBuilder, Uop, UopKind


class TestUop:
    def test_memory_ops_require_address(self):
        with pytest.raises(ValueError):
            Uop(UopKind.LOAD)
        with pytest.raises(ValueError):
            Uop(UopKind.STORE)
        with pytest.raises(ValueError):
            Uop(UopKind.PREFETCH)

    def test_alu_needs_no_address(self):
        u = Uop(UopKind.ALU)
        assert u.addr is None and u.latency == 1


class TestTraceBuilder:
    def test_indices_sequential(self):
        tb = TraceBuilder()
        assert tb.alu() == 0
        assert tb.load(0x1000, latency=4) == 1
        assert tb.store(0x1000) == 2

    def test_dependences_recorded(self):
        tb = TraceBuilder()
        a = tb.alu()
        b = tb.load(0x1000, latency=4, deps=(a,))
        trace = tb.build()
        assert trace.uops[b].deps == (a,)

    def test_branch_penalty_adds_latency(self):
        tb = TraceBuilder()
        tb.branch(mispredict_penalty=14)
        assert tb.build().uops[0].latency == 15

    def test_fixed_latency(self):
        tb = TraceBuilder()
        tb.fixed(5000)
        u = tb.build().uops[0]
        assert u.latency == 5000 and u.kind is UopKind.FIXED

    def test_mallacc_kind(self):
        tb = TraceBuilder()
        tb.mallacc(3)
        assert tb.build().uops[0].kind is UopKind.MALLACC

    def test_last_index_empty_raises(self):
        with pytest.raises(IndexError):
            TraceBuilder().last_index()

    def test_counts_and_tags(self):
        tb = TraceBuilder()
        tb.alu(tag=Tag.SIZE_CLASS)
        tb.load(0x1000, latency=4, tag=Tag.PUSH_POP)
        tb.load(0x2000, latency=4, tag=Tag.PUSH_POP)
        trace = tb.build()
        assert trace.count(UopKind.LOAD) == 2
        assert trace.tags_present() == {Tag.SIZE_CLASS, Tag.PUSH_POP}


class TestWithoutTags:
    def _chain(self):
        """alu(SIZE_CLASS) -> load(SIZE_CLASS) -> load(PUSH_POP) -> store(METADATA)"""
        tb = TraceBuilder()
        a = tb.alu(tag=Tag.SIZE_CLASS)
        b = tb.load(0x1000, latency=4, deps=(a,), tag=Tag.SIZE_CLASS)
        c = tb.load(0x2000, latency=4, deps=(b,), tag=Tag.PUSH_POP)
        tb.store(0x3000, deps=(c,), tag=Tag.METADATA)
        return tb.build()

    def test_removes_tagged_uops(self):
        trace = self._chain().without_tags({Tag.SIZE_CLASS})
        assert len(trace) == 2
        assert all(u.tag is not Tag.SIZE_CLASS for u in trace)

    def test_dependences_rewired_transitively(self):
        trace = self._chain().without_tags({Tag.SIZE_CLASS})
        # The surviving load's deps chain resolved to nothing (removed roots).
        assert trace.uops[0].deps == ()
        assert trace.uops[1].deps == (0,)

    def test_middle_removal_bridges_chain(self):
        trace = self._chain().without_tags({Tag.PUSH_POP})
        # store must now depend on the size-class load (index 1).
        assert trace.uops[2].deps == (1,)

    def test_remove_everything(self):
        trace = self._chain().without_tags(
            {Tag.SIZE_CLASS, Tag.PUSH_POP, Tag.METADATA}
        )
        assert len(trace) == 0

    def test_noop_removal_preserves_structure(self):
        before = self._chain()
        after = before.without_tags({Tag.SAMPLING})
        assert len(after) == len(before)
        assert [u.deps for u in after] == [u.deps for u in before]

    def test_duplicate_forwarded_deps_collapse(self):
        tb = TraceBuilder()
        a = tb.alu(tag=Tag.ADDRESSING)
        b = tb.alu(deps=(a,), tag=Tag.SIZE_CLASS)
        c = tb.alu(deps=(a,), tag=Tag.SIZE_CLASS)
        tb.alu(deps=(b, c), tag=Tag.METADATA)
        trace = tb.build().without_tags({Tag.SIZE_CLASS})
        assert trace.uops[1].deps == (0,)

    def test_limit_study_tags_are_the_three_components(self):
        assert LIMIT_STUDY_TAGS == {Tag.SIZE_CLASS, Tag.SAMPLING, Tag.PUSH_POP}

    def test_original_trace_unchanged(self):
        before = self._chain()
        before.without_tags({Tag.SIZE_CLASS})
        assert len(before) == 4


class TestTraceIteration:
    def test_iter_and_len(self):
        tb = TraceBuilder()
        tb.alu()
        tb.alu()
        trace = tb.build()
        assert len(trace) == 2
        assert len(list(trace)) == 2

    def test_empty_trace(self):
        trace = Trace()
        assert len(trace) == 0
        assert trace.tags_present() == set()

"""Tests for simulated memory and the virtual address space."""

import pytest

from repro.sim.memory import (
    NULL,
    MemoryError_,
    Reservation,
    SimulatedMemory,
    VirtualAddressSpace,
    WORD_SIZE,
)


class TestSimulatedMemory:
    def test_read_unwritten_returns_zero(self):
        mem = SimulatedMemory()
        assert mem.read_word(0x1000) == 0

    def test_write_then_read(self):
        mem = SimulatedMemory()
        mem.write_word(0x1000, 0xDEADBEEF)
        assert mem.read_word(0x1000) == 0xDEADBEEF

    def test_overwrite(self):
        mem = SimulatedMemory()
        mem.write_word(0x1000, 1)
        mem.write_word(0x1000, 2)
        assert mem.read_word(0x1000) == 2

    def test_distinct_addresses_independent(self):
        mem = SimulatedMemory()
        mem.write_word(0x1000, 10)
        mem.write_word(0x1008, 20)
        assert mem.read_word(0x1000) == 10
        assert mem.read_word(0x1008) == 20

    def test_write_zero_keeps_sparse(self):
        mem = SimulatedMemory()
        mem.write_word(0x1000, 5)
        mem.write_word(0x1000, 0)
        assert mem.read_word(0x1000) == 0
        assert mem.words_written() == 0

    def test_value_truncated_to_64_bits(self):
        mem = SimulatedMemory()
        mem.write_word(0x1000, 1 << 65)
        assert mem.read_word(0x1000) == 0

    def test_unaligned_read_raises(self):
        mem = SimulatedMemory()
        with pytest.raises(MemoryError_):
            mem.read_word(0x1001)

    def test_unaligned_write_raises(self):
        mem = SimulatedMemory()
        with pytest.raises(MemoryError_):
            mem.write_word(0x1004, 1)

    def test_null_access_raises(self):
        mem = SimulatedMemory()
        with pytest.raises(MemoryError_):
            mem.read_word(NULL)

    def test_negative_address_raises(self):
        mem = SimulatedMemory()
        with pytest.raises(MemoryError_):
            mem.write_word(-8, 1)

    def test_words_written_counts_nonzero(self):
        mem = SimulatedMemory()
        for i in range(5):
            mem.write_word(0x1000 + i * WORD_SIZE, i + 1)
        assert mem.words_written() == 5


class TestVirtualAddressSpace:
    def test_reserve_pages_contiguous(self):
        vas = VirtualAddressSpace()
        r1 = vas.reserve_pages(4)
        r2 = vas.reserve_pages(2)
        assert r2.start == r1.end
        assert r1.length == 4 * vas.page_size

    def test_reserve_pages_positive_required(self):
        vas = VirtualAddressSpace()
        with pytest.raises(ValueError):
            vas.reserve_pages(0)

    def test_heap_bytes_reserved(self):
        vas = VirtualAddressSpace()
        vas.reserve_pages(3)
        assert vas.heap_bytes_reserved == 3 * vas.page_size

    def test_owns_heap_address(self):
        vas = VirtualAddressSpace()
        r = vas.reserve_pages(1)
        assert vas.owns_heap_address(r.start)
        assert vas.owns_heap_address(r.end - 8)
        assert not vas.owns_heap_address(r.end)
        assert not vas.owns_heap_address(vas.metadata_base)

    def test_reserve_metadata_alignment(self):
        vas = VirtualAddressSpace()
        vas.reserve_metadata(3)  # misalign the bump pointer
        addr = vas.reserve_metadata(100, align=64)
        assert addr % 64 == 0

    def test_reserve_metadata_disjoint(self):
        vas = VirtualAddressSpace()
        a = vas.reserve_metadata(128)
        b = vas.reserve_metadata(128)
        assert b >= a + 128

    def test_reserve_metadata_validates(self):
        vas = VirtualAddressSpace()
        with pytest.raises(ValueError):
            vas.reserve_metadata(0)
        with pytest.raises(ValueError):
            vas.reserve_metadata(8, align=3)

    def test_metadata_and_heap_regions_disjoint(self):
        vas = VirtualAddressSpace()
        meta = vas.reserve_metadata(1 << 20)
        heap = vas.reserve_pages(128)
        assert meta + (1 << 20) <= heap.start

    def test_reservation_end(self):
        r = Reservation(start=100, length=50)
        assert r.end == 150

"""Unit tests for the emission-side intern table (TraceInterner)."""

import os

import pytest

from repro.sim.trace_intern import TraceInterner, interner_from_env
from repro.sim.uop import FingerprintKey, Tag, TraceBuilder, UopKind


def _builder(latency=4, token="fast"):
    tb = TraceBuilder()
    tb.note(token)
    a = tb.alu()
    tb.load(0x1000, latency, deps=(a,), tag=Tag.SIZE_CLASS)
    return tb


def _intern(interner, tb, site="malloc:fast"):
    return tb.build_interned(interner, site)


class TestInterning:
    def test_identical_emissions_share_one_trace(self):
        it = TraceInterner()
        t1 = _intern(it, _builder())
        t2 = _intern(it, _builder())
        assert t1 is t2
        assert it.stats.hits == 1 and it.stats.misses == 1
        assert it.num_templates == 1 and it.num_variants == 1

    def test_latency_variant_gets_new_trace_same_template(self):
        it = TraceInterner()
        t1 = _intern(it, _builder(latency=4))
        t2 = _intern(it, _builder(latency=12))
        assert t1 is not t2
        assert it.num_templates == 1 and it.num_variants == 2
        # Same structure, different latency: fingerprints must differ.
        assert t1.fingerprint() != t2.fingerprint()

    def test_different_tokens_are_different_templates(self):
        it = TraceInterner()
        _intern(it, _builder(token="a"))
        _intern(it, _builder(token="b"))
        assert it.num_templates == 2

    def test_different_sites_are_different_templates(self):
        it = TraceInterner()
        _intern(it, _builder(), site="malloc:fast")
        _intern(it, _builder(), site="free:fast")
        assert it.num_templates == 2

    def test_interned_trace_matches_plain_build(self):
        it = TraceInterner()
        interned = _intern(it, _builder())
        plain = _builder().build()
        assert interned.fingerprint() == plain.fingerprint()
        assert [u.kind for u in interned] == [u.kind for u in plain]

    def test_interned_trace_has_cached_fingerprint_key(self):
        it = TraceInterner()
        trace = _intern(it, _builder())
        key = trace.fingerprint_key()
        assert isinstance(key, FingerprintKey)
        # Hash/eq-compatible with the plain tuple in both directions, so
        # either form indexes the same trace-cache entry.
        fp = trace.fingerprint()
        assert key == fp and fp == key
        assert hash(key) == hash(fp)
        assert {key: 1}[fp] == 1 and {fp: 2}[key] == 2

    def test_adhoc_trace_returns_plain_tuple_key(self):
        trace = _builder().build()
        assert trace.fingerprint_key() is trace.fingerprint()

    def test_latency_length_mismatch_is_an_error(self):
        it = TraceInterner()
        tb = _builder()
        with pytest.raises(AssertionError, match="latency tuple"):
            it.intern("bad:site", ("t",), (1, 2, 3), tb._materialize)


class TestEviction:
    def test_fifo_eviction_bounds_variants(self):
        it = TraceInterner(max_variants=2)
        for latency in (1, 2, 3):
            _intern(it, _builder(latency=latency))
        assert it.num_variants == 2
        assert it.stats.evictions == 1
        # The evicted (oldest) variant re-materializes as a miss.
        _intern(it, _builder(latency=1))
        assert it.stats.misses == 4

    def test_clear_drops_tables_keeps_stats(self):
        it = TraceInterner()
        _intern(it, _builder())
        it.clear()
        assert it.num_templates == 0 and it.num_variants == 0
        assert it.stats.misses == 1


class TestValidateMode:
    def test_validate_passes_for_faithful_emission(self):
        it = TraceInterner(validate=True)
        _intern(it, _builder())
        _intern(it, _builder())
        assert it.stats.validations == 1

    def test_validate_catches_untokenized_structural_decision(self):
        """Two emissions with the same tokens+latencies but different
        structure: exactly the bug class validate mode exists for."""
        it = TraceInterner(validate=True)

        tb1 = TraceBuilder()
        tb1.load(0x100, 4)
        it.intern("buggy:site", (), (4,), tb1._materialize)

        tb2 = TraceBuilder()
        tb2.alu(latency=4)  # same latency tuple, different uop kind
        with pytest.raises(AssertionError, match="intern collision"):
            it.intern("buggy:site", (), (4,), tb2._materialize)


class TestStats:
    def test_hit_rate(self):
        it = TraceInterner()
        _intern(it, _builder())
        _intern(it, _builder())
        _intern(it, _builder())
        assert it.stats.lookups == 3
        assert it.stats.hit_rate == pytest.approx(2 / 3)
        assert it.stats.snapshot() == (2, 1)

    def test_empty_hit_rate(self):
        assert TraceInterner().stats.hit_rate == 0.0


class TestEnvGating:
    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_INTERN", raising=False)
        assert isinstance(interner_from_env(), TraceInterner)

    @pytest.mark.parametrize("flag", ["0", "off", "false", "no", " OFF "])
    def test_disabled_values(self, monkeypatch, flag):
        monkeypatch.setenv("REPRO_TRACE_INTERN", flag)
        assert interner_from_env() is None

    def test_validate_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_INTERN_VALIDATE", "1")
        assert TraceInterner().validate
        monkeypatch.setenv("REPRO_INTERN_VALIDATE", "0")
        assert not TraceInterner().validate

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceInterner(max_variants=0)


class TestUopSlots:
    def test_uop_has_no_dict(self):
        from repro.sim.uop import Uop

        u = Uop(UopKind.ALU)
        assert not hasattr(u, "__dict__")
        with pytest.raises(AttributeError):
            u.extra = 1

"""Property-based tests for the coherence substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.multicore import build_core_machines

ADDRS = st.sampled_from([0x1000, 0x1040, 0x2000, 0x9000, 0x1000 + 4096])


@st.composite
def access_streams(draw, num_cores=3, max_ops=40):
    n = draw(st.integers(min_value=1, max_value=max_ops))
    return [
        (
            draw(st.integers(min_value=0, max_value=num_cores - 1)),
            draw(ADDRS),
            draw(st.booleans()),
        )
        for _ in range(n)
    ]


@given(access_streams())
@settings(max_examples=50, deadline=None)
def test_written_line_never_resident_elsewhere(stream):
    """Single-writer invariant: right after a write, no other core's private
    caches hold the line."""
    machines, _ = build_core_machines(3)
    for core, addr, write in stream:
        machines[core].hierarchy.access(addr, write=write)
        if write:
            for other in range(3):
                if other != core:
                    h = machines[other].hierarchy
                    assert not h.l1.contains(addr)
                    assert not h.l2.contains(addr)


@given(access_streams())
@settings(max_examples=50, deadline=None)
def test_latency_always_at_least_l1(stream):
    machines, _ = build_core_machines(3)
    for core, addr, write in stream:
        latency = machines[core].hierarchy.access(addr, write=write)
        assert latency >= machines[core].hierarchy.config.l1.latency


@given(access_streams())
@settings(max_examples=50, deadline=None)
def test_transfer_cycles_account_transfers(stream):
    machines, substrate = build_core_machines(3)
    for core, addr, write in stream:
        machines[core].hierarchy.access(addr, write=write)
    stats = substrate.directory.stats
    assert stats.transfer_cycles == (
        stats.remote_transfers * substrate.directory.transfer_penalty
    )


@given(access_streams())
@settings(max_examples=30, deadline=None)
def test_repeated_local_reads_settle_to_l1(stream):
    """After any history, a core that reads the same line twice in a row
    without interference pays L1 the second time."""
    machines, _ = build_core_machines(3)
    for core, addr, write in stream:
        machines[core].hierarchy.access(addr, write=write)
    h = machines[0].hierarchy
    h.access(0x1000)
    assert h.access(0x1000) == h.config.l1.latency

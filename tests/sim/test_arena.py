"""Arena-slab memory: exact observational parity with the sparse model.

:class:`~repro.sim.arena.ArenaMemory` is the columnar engine's memory
model; every behavior the allocator can observe — demand-zero reads,
alignment/null faults, 64-bit wrapping, the ``words_written`` census —
must match :class:`~repro.sim.memory.SimulatedMemory` word for word.
Slab commitment (growth) is the one piece with no sparse-model analog, so
it gets direct structural checks: zero writes commit nothing, and the
census survives arbitrary overwrite/zero churn at slab boundaries.
"""

import random

import pytest

from repro.sim.arena import SLAB_BYTES, ArenaMemory, _Slab
from repro.sim.memory import WORD_SIZE, MemoryError_, SimulatedMemory


class TestAlignment:
    @pytest.mark.parametrize("addr", [0, -8, 1, 7, 9, 4097, (1 << 40) + 4])
    def test_faults_match_reference(self, addr):
        arena, ref = ArenaMemory(), SimulatedMemory()
        for mem in (arena, ref):
            with pytest.raises(MemoryError_):
                mem.read_word(addr)
            with pytest.raises(MemoryError_):
                mem.write_word(addr, 1)
        assert arena.words_written() == ref.words_written() == 0

    def test_aligned_boundaries_ok(self):
        arena = ArenaMemory()
        for addr in (8, SLAB_BYTES - 8, SLAB_BYTES, SLAB_BYTES + 8):
            arena.write_word(addr, addr)
            assert arena.read_word(addr) == addr


class TestDemandZero:
    def test_unwritten_reads_are_zero_and_commit_nothing(self):
        arena = ArenaMemory()
        for addr in (8, 1 << 20, 1 << 44):
            assert arena.read_word(addr) == 0
        assert arena._slabs == {}

    def test_zero_write_to_fresh_window_commits_nothing(self):
        arena = ArenaMemory()
        arena.write_word(1 << 20, 0)
        assert arena._slabs == {}
        assert arena.words_written() == 0

    def test_zeroing_a_word_keeps_census_exact(self):
        arena, ref = ArenaMemory(), SimulatedMemory()
        addr = 1 << 20
        for mem in (arena, ref):
            mem.write_word(addr, 42)
            mem.write_word(addr, 0)
        assert arena.read_word(addr) == ref.read_word(addr) == 0
        assert arena.words_written() == ref.words_written() == 0


class TestSlabGrowth:
    def test_one_slab_per_touched_window(self):
        arena = ArenaMemory()
        base = 1 << 30
        for k in range(5):
            arena.write_word(base + k * SLAB_BYTES, k + 1)
        assert len(arena._slabs) == 5
        # Every word of one slab window resolves inside that slab.
        arena.write_word(base + 8, 7)
        arena.write_word(base + SLAB_BYTES - 8, 9)
        assert len(arena._slabs) == 5
        assert arena.read_word(base + 8) == 7
        assert arena.read_word(base + SLAB_BYTES - 8) == 9

    def test_boundary_words_land_in_adjacent_slabs(self):
        arena = ArenaMemory()
        last = SLAB_BYTES - WORD_SIZE  # final word of slab 0's window
        first = SLAB_BYTES  # first word of slab 1's window
        arena.write_word(last, 0xAAAA)
        arena.write_word(first, 0xBBBB)
        assert len(arena._slabs) == 2
        assert arena.read_word(last) == 0xAAAA
        assert arena.read_word(first) == 0xBBBB

    def test_wrapping_matches_reference(self):
        arena, ref = ArenaMemory(), SimulatedMemory()
        addr, value = 1 << 25, (1 << 64) + 12345
        for mem in (arena, ref):
            mem.write_word(addr, value)
        assert arena.read_word(addr) == ref.read_word(addr) == 12345


class TestCensusParity:
    def test_randomized_stream_matches_reference(self):
        """Overwrites, zeroings, and re-writes across several slabs keep the
        nonzero-word census identical to the sparse dict's size."""
        rng = random.Random(1234)
        arena, ref = ArenaMemory(), SimulatedMemory()
        addrs = [
            (1 << 30) + 8 * rng.randrange(4 * SLAB_BYTES // 8)
            for _ in range(200)
        ]
        for step in range(3000):
            addr = rng.choice(addrs)
            if rng.random() < 0.3:
                assert arena.read_word(addr) == ref.read_word(addr)
            else:
                value = rng.choice([0, 0, 1, 7, 1 << 63, (1 << 64) - 8])
                arena.write_word(addr, value)
                ref.write_word(addr, value)
            if step % 250 == 0:
                assert arena.words_written() == ref.words_written()
        assert arena.words_written() == ref.words_written()
        for addr in addrs:
            assert arena.read_word(addr) == ref.read_word(addr)


class TestSlabRepr:
    def test_value_based_repr_ignores_trailing_zeros(self):
        """State-parity tests compare machines via repr; two slabs holding
        the same words must render identically even if one was churned."""
        a, b = _Slab(), _Slab()
        a.words[3] = 17
        b.words[3] = 17
        b.words[100] = 5
        b.words[100] = 0  # churn back to zero
        assert repr(a) == repr(b)
        a.words[4] = 1
        assert repr(a) != repr(b)

"""Tests for the set-associative cache model."""

import pytest

from repro.sim.cache import CacheConfig, SetAssociativeCache


def small_cache(assoc=4, sets=4, line=64):
    return SetAssociativeCache(
        CacheConfig("test", size_bytes=assoc * sets * line, assoc=assoc, line_size=line)
    )


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig("L1", 32 * 1024, 8, line_size=64)
        assert cfg.num_sets == 64

    def test_uneven_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 3, line_size=64)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1024, 2, line_size=48)


class TestLookupInsert:
    def test_miss_then_hit(self):
        c = small_cache()
        assert not c.lookup(0x1000)
        c.insert(0x1000)
        assert c.lookup(0x1000)

    def test_same_line_different_offsets_hit(self):
        c = small_cache()
        c.insert(0x1000)
        assert c.lookup(0x1000 + 63)
        assert not c.lookup(0x1000 + 64)

    def test_insert_same_line_no_eviction(self):
        c = small_cache(assoc=2)
        c.insert(0x0)
        assert c.insert(0x0) is None
        assert c.resident_lines == 1

    def test_eviction_returns_victim_address(self):
        c = small_cache(assoc=2, sets=1)
        c.insert(0x000)
        c.insert(0x040)
        victim = c.insert(0x080)
        assert victim == 0x000  # LRU of the set

    def test_lru_refresh_on_lookup(self):
        c = small_cache(assoc=2, sets=1)
        c.insert(0x000)
        c.insert(0x040)
        c.lookup(0x000)  # refresh
        victim = c.insert(0x080)
        assert victim == 0x040

    def test_set_indexing_isolates_sets(self):
        c = small_cache(assoc=1, sets=4)
        c.insert(0x000)  # set 0
        c.insert(0x040)  # set 1
        assert c.contains(0x000) and c.contains(0x040)

    def test_conflict_within_set(self):
        c = small_cache(assoc=1, sets=4)
        c.insert(0x000)
        c.insert(0x400)  # 4 sets * 64B line -> same set 0
        assert not c.contains(0x000)
        assert c.contains(0x400)


class TestMaintenance:
    def test_invalidate(self):
        c = small_cache()
        c.insert(0x1000)
        assert c.invalidate(0x1000)
        assert not c.contains(0x1000)
        assert not c.invalidate(0x1000)

    def test_flush_empties(self):
        c = small_cache()
        for i in range(8):
            c.insert(i * 64)
        c.flush()
        assert c.resident_lines == 0

    def test_contains_does_not_touch_stats(self):
        c = small_cache()
        c.insert(0x1000)
        hits, misses = c.hits, c.misses
        c.contains(0x1000)
        c.contains(0x9999000)
        assert (c.hits, c.misses) == (hits, misses)

    def test_lookup_no_lru_update_flag(self):
        c = small_cache(assoc=2, sets=1)
        c.insert(0x000)
        c.insert(0x040)
        c.lookup(0x000, update_lru=False)
        victim = c.insert(0x080)
        assert victim == 0x000  # 0x000 stayed LRU


class TestAntagonist:
    def test_evicts_half_of_each_set(self):
        c = small_cache(assoc=4, sets=2)
        for i in range(8):
            c.insert(i * 64)
        assert c.resident_lines == 8
        evicted = c.evict_less_used_half()
        assert evicted == 4
        assert c.resident_lines == 4

    def test_evicts_lru_half(self):
        c = small_cache(assoc=4, sets=1)
        for i in range(4):
            c.insert(i * 64)
        c.evict_less_used_half()
        # MRU half (lines 2,3) survives.
        assert not c.contains(0 * 64) and not c.contains(1 * 64)
        assert c.contains(2 * 64) and c.contains(3 * 64)

    def test_odd_occupancy(self):
        c = small_cache(assoc=4, sets=1)
        for i in range(3):
            c.insert(i * 64)
        evicted = c.evict_less_used_half()
        assert evicted == 1
        assert c.resident_lines == 2

    def test_empty_cache_noop(self):
        c = small_cache()
        assert c.evict_less_used_half() == 0


class TestStats:
    def test_miss_rate(self):
        c = small_cache()
        c.lookup(0x0)  # miss
        c.insert(0x0)
        c.lookup(0x0)  # hit
        assert c.miss_rate == pytest.approx(0.5)

    def test_miss_rate_empty(self):
        assert small_cache().miss_rate == 0.0

"""Tests for the branch predictor."""

from repro.sim.branch import BranchConfig, BranchPredictor


class TestBranchPredictor:
    def test_steady_branch_predicted_after_warmup(self):
        bp = BranchPredictor()
        for _ in range(3):
            bp.predict("site", taken=True)
        assert bp.predict("site", taken=True) == 0

    def test_initial_bias_weakly_taken(self):
        bp = BranchPredictor()
        assert bp.predict("site", taken=True) == 0

    def test_not_taken_costs_once_then_learns(self):
        bp = BranchPredictor()
        penalties = [bp.predict("s", taken=False) for _ in range(4)]
        assert penalties[0] > 0  # initial counter predicts taken
        assert penalties[-1] == 0

    def test_two_bit_hysteresis(self):
        bp = BranchPredictor()
        for _ in range(4):
            bp.predict("s", taken=True)  # saturate
        assert bp.predict("s", taken=False) > 0  # mispredict
        assert bp.predict("s", taken=True) == 0  # still predicted taken

    def test_sites_independent(self):
        bp = BranchPredictor()
        for _ in range(4):
            bp.predict("a", taken=False)
        assert bp.predict("a", taken=False) == 0
        assert bp.predict("b", taken=True) == 0

    def test_mispredict_rate_and_reset(self):
        bp = BranchPredictor(BranchConfig(mispredict_penalty=10))
        bp.predict("s", taken=False)  # mispredict
        bp.predict("s", taken=False)  # counter now 0 -> hmm predicts taken at 1
        assert 0 < bp.mispredict_rate <= 1
        bp.reset()
        assert bp.predictions == 0 and bp.mispredicts == 0

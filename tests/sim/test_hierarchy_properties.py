"""Property-based tests for the cache hierarchy (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.hierarchy import CacheHierarchy

ADDRS = st.integers(min_value=1, max_value=1 << 20).map(lambda x: x * 64)


@given(st.lists(ADDRS, min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_latency_matches_configured_levels(addrs):
    h = CacheHierarchy()
    valid = {
        h.config.l1.latency,
        h.config.l2.latency,
        h.config.l3.latency,
        h.config.dram_latency,
    }
    for addr in addrs:
        assert h.access(addr) in valid


@given(st.lists(ADDRS, min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_immediate_reaccess_hits_l1(addrs):
    h = CacheHierarchy()
    for addr in addrs:
        h.access(addr)
        assert h.access(addr) == h.config.l1.latency


@given(st.lists(ADDRS, min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_probe_agrees_with_access(addrs):
    """probe_latency predicts exactly what the next access pays."""
    h = CacheHierarchy()
    for addr in addrs:
        predicted = h.probe_latency(addr)
        assert h.access(addr) == predicted


@given(st.lists(ADDRS, min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_antagonize_never_grows_occupancy(addrs):
    h = CacheHierarchy()
    for addr in addrs:
        h.access(addr)
    before = h.l1.resident_lines + h.l2.resident_lines
    h.antagonize()
    after = h.l1.resident_lines + h.l2.resident_lines
    assert after <= before
    # L3 untouched.
    for addr in addrs:
        assert h.l3.contains(addr) or h.probe_latency(addr) <= h.config.dram_latency


@given(st.lists(ADDRS, min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_flush_resets_to_cold(addrs):
    h = CacheHierarchy()
    for addr in addrs:
        h.access(addr)
    h.flush_all()
    for addr in addrs:
        assert h.probe_latency(addr) == h.config.dram_latency
        break  # one cold probe suffices per example

"""Tests for the synthetic macro workload models."""

import pytest

from repro.alloc.size_classes import SizeClassTable
from repro.workloads import MACRO_WORKLOADS
from repro.workloads.base import OpKind
from repro.workloads.macro import MACRO_PROFILES, MacroProfile, macro_workload

TABLE = SizeClassTable.generate()


def measured(workload, n=3000, seed=1):
    return [o for o in workload.ops(seed=seed, num_ops=n) if not o.warmup]


def classes_for_coverage(ops, coverage=0.9):
    counts = {}
    total = 0
    for o in ops:
        if o.kind is OpKind.MALLOC:
            cl = TABLE.size_class_of(o.size)
            counts[cl] = counts.get(cl, 0) + 1
            total += 1
    acc = 0
    for i, c in enumerate(sorted(counts.values(), reverse=True)):
        acc += c
        if acc / total >= coverage:
            return i + 1
    return len(counts)


class TestRegistry:
    def test_all_eight_workloads(self):
        assert set(MACRO_WORKLOADS) == {
            "400.perlbench",
            "465.tonto",
            "471.omnetpp",
            "483.xalancbmk",
            "masstree.same",
            "masstree.wcol1",
            "xapian.abstracts",
            "xapian.pages",
        }

    def test_paper_references_attached(self):
        for w in MACRO_WORKLOADS.values():
            assert "fig18" in w.paper


class TestSizeClassMixes:
    """Figure 6: all but one workload use <5 classes for 90% of calls;
    xalancbmk needs ~30."""

    @pytest.mark.parametrize(
        "name,lo,hi",
        [
            ("400.perlbench", 3, 9),
            ("465.tonto", 2, 5),
            ("471.omnetpp", 3, 7),
            ("483.xalancbmk", 20, 34),
            ("masstree.same", 1, 2),
            ("masstree.wcol1", 1, 3),
            ("xapian.abstracts", 2, 5),
            ("xapian.pages", 2, 6),
        ],
    )
    def test_classes_for_90pct(self, name, lo, hi):
        ops = measured(MACRO_WORKLOADS[name], n=4000)
        assert lo <= classes_for_coverage(ops) <= hi

    def test_masstree_single_class_dominates(self):
        ops = measured(MACRO_WORKLOADS["masstree.same"], n=2000)
        sizes = [o.size for o in ops if o.kind is OpKind.MALLOC]
        top = max(set(sizes), key=sizes.count)
        assert sizes.count(top) / len(sizes) > 0.8


class TestFreeBehaviour:
    def test_masstree_never_frees(self):
        """Section 3.2: the masstree performance tests never free memory."""
        for name in ("masstree.same", "masstree.wcol1"):
            ops = measured(MACRO_WORKLOADS[name], n=2000)
            assert all(o.kind is OpKind.MALLOC for o in ops)

    def test_xapian_frees_everything_eventually(self):
        ops = measured(MACRO_WORKLOADS["xapian.abstracts"], n=4000)
        frees = sum(1 for o in ops if o.kind is not OpKind.MALLOC)
        mallocs = len(ops) - frees
        assert frees / mallocs > 0.75

    def test_c_workloads_use_plain_free(self):
        for name in ("400.perlbench", "465.tonto"):
            ops = measured(MACRO_WORKLOADS[name], n=3000)
            assert not any(o.kind is OpKind.FREE_SIZED for o in ops)

    def test_cxx_workloads_use_sized_free(self):
        ops = measured(MACRO_WORKLOADS["483.xalancbmk"], n=3000)
        sized = sum(1 for o in ops if o.kind is OpKind.FREE_SIZED)
        plain = sum(1 for o in ops if o.kind is OpKind.FREE)
        assert sized > plain

    def test_slot_discipline(self):
        for name, w in MACRO_WORKLOADS.items():
            live = set()
            for o in w.ops(seed=2, num_ops=2000):
                if o.kind is OpKind.MALLOC:
                    assert o.slot not in live
                    live.add(o.slot)
                elif o.kind in (OpKind.FREE, OpKind.FREE_SIZED):
                    assert o.slot in live, name
                    live.discard(o.slot)


class TestStreamShape:
    def test_deterministic_per_seed(self):
        w = MACRO_WORKLOADS["400.perlbench"]
        assert list(w.ops(seed=9, num_ops=500)) == list(w.ops(seed=9, num_ops=500))
        assert list(w.ops(seed=9, num_ops=500)) != list(w.ops(seed=10, num_ops=500))

    def test_gaps_positive_and_near_mean(self):
        profile = MACRO_PROFILES["465.tonto"]
        ops = measured(MACRO_WORKLOADS["465.tonto"], n=3000)
        gaps = [o.gap_cycles for o in ops]
        assert all(g >= 1 for g in gaps)
        mean = sum(gaps) / len(gaps)
        assert 0.5 * profile.gap_cycles_mean <= mean <= 1.5 * profile.gap_cycles_mean

    def test_app_lines_match_profile(self):
        profile = MACRO_PROFILES["483.xalancbmk"]
        ops = measured(MACRO_WORKLOADS["483.xalancbmk"], n=500)
        assert all(o.app_lines == profile.app_lines for o in ops)

    def test_warmup_prefix(self):
        ops = list(MACRO_WORKLOADS["400.perlbench"].ops(seed=1, num_ops=2000))
        first_measured = next(i for i, o in enumerate(ops) if not o.warmup)
        assert first_measured > 50
        assert all(not o.warmup for o in ops[first_measured + 100 :])

    def test_phase_churn_emits_free_bursts(self):
        """Phase boundaries release most of the live set at once."""
        ops = measured(MACRO_WORKLOADS["400.perlbench"], n=6000)
        run, longest = 0, 0
        for o in ops:
            if o.kind is not OpKind.MALLOC:
                run += 1
                longest = max(longest, run)
            else:
                run = 0
        assert longest >= 10


class TestCustomProfile:
    def test_macro_workload_factory(self):
        profile = MacroProfile(
            name="custom",
            sizes=((64, 1.0),),
            free_ratio=1.0,
            sized_free_frac=1.0,
            gap_cycles_mean=100,
            app_lines=0,
            lifetime_ops=8,
        )
        w = macro_workload(profile, default_ops=200)
        ops = list(w.ops(seed=1))
        assert ops
        sizes = {o.size for o in ops if o.kind is OpKind.MALLOC}
        assert sizes == {64}

"""Tests for the adversarial workload generators."""

from repro.alloc.size_classes import SizeClassTable
from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.experiments import compare_workload, make_mallacc
from repro.harness.runner import run_workload
from repro.workloads.adversarial import class_thrash, fragmentation_bomb, prefetch_trap
from repro.workloads.base import OpKind

TABLE = SizeClassTable.generate()


def classes_used(workload, n=800):
    return {
        TABLE.size_class_of(op.size)
        for op in workload.ops(num_ops=n)
        if op.kind is OpKind.MALLOC and not op.warmup
    }


class TestClassThrash:
    def test_touches_requested_class_count(self):
        assert len(classes_used(class_thrash(48), n=2000)) >= 40

    def test_slot_discipline(self):
        live = set()
        for op in class_thrash().ops(num_ops=600):
            if op.kind is OpKind.MALLOC:
                assert op.slot not in live
                live.add(op.slot)
            else:
                live.discard(op.slot)

    def test_defeats_small_cache(self):
        alloc = make_mallacc(cache_config=MallocCacheConfig(num_entries=4))
        run_workload(alloc, class_thrash(48).ops(num_ops=800))
        # Every malloc misses (48-class round-robin vs 4 entries); only the
        # paired sized free re-hits the entry the malloc just taught, so the
        # rate pins at ~0.5 — and every *malloc* pays miss + update.
        assert 0.35 <= alloc.malloc_cache.sz_hit_rate <= 0.6

    def test_large_cache_recovers(self):
        alloc = make_mallacc(cache_config=MallocCacheConfig(num_entries=64))
        run_workload(alloc, class_thrash(48).ops(num_ops=800))
        assert alloc.malloc_cache.sz_hit_rate > 0.8


class TestPrefetchTrap:
    def test_single_class(self):
        assert len(classes_used(prefetch_trap())) == 1

    def test_causes_blocking(self):
        alloc = make_mallacc()
        run_workload(alloc, prefetch_trap().ops(num_ops=800))
        assert alloc.malloc_cache.stats.blocked_cycles > 0

    def test_blocking_disabled_eliminates_stalls(self):
        alloc = make_mallacc(cache_config=MallocCacheConfig(prefetch_blocking=False))
        run_workload(alloc, prefetch_trap().ops(num_ops=800))
        assert alloc.malloc_cache.stats.blocked_cycles == 0


class TestFragmentationBomb:
    def test_all_slots_eventually_freed(self):
        live = set()
        for op in fragmentation_bomb(population=64).ops(num_ops=1000):
            if op.kind is OpKind.MALLOC:
                live.add(op.slot)
            else:
                live.discard(op.slot)
        # Only the tail population can still be live.
        assert len(live) <= 64

    def test_runs_clean_under_both_allocators(self):
        comparison = compare_workload(fragmentation_bomb(population=64), num_ops=800)
        assert comparison.baseline.records
        assert comparison.mallacc.records

"""Tests for multithreaded workload generators and their runner."""

import pytest

from repro.alloc.constants import AllocatorConfig
from repro.alloc.multithread import MultiThreadAllocator
from repro.harness.runner import run_multithreaded
from repro.workloads.base import OpKind
from repro.workloads.threads import balanced_churn, producer_consumer, request_fanout


def tids_of(workload, n=600):
    return {op.tid for op in workload.ops(seed=1, num_ops=n)}


class TestGenerators:
    def test_balanced_churn_uses_all_threads(self):
        assert tids_of(balanced_churn(4)) == {0, 1, 2, 3}

    def test_balanced_churn_frees_own_objects(self):
        allocated_by = {}
        for op in balanced_churn(3).ops(seed=2, num_ops=900):
            if op.kind is OpKind.MALLOC:
                allocated_by[op.slot] = op.tid
            elif op.kind is OpKind.FREE_SIZED:
                assert allocated_by[op.slot] == op.tid

    def test_producer_consumer_roles(self):
        w = producer_consumer(num_producers=1, num_consumers=2)
        for op in w.ops(seed=1, num_ops=600):
            if op.kind is OpKind.MALLOC:
                assert op.tid == 0
            elif op.kind is OpKind.FREE:
                assert op.tid in (1, 2)

    def test_request_fanout_dispatcher_allocates(self):
        w = request_fanout(num_workers=2)
        for op in w.ops(seed=1, num_ops=600):
            if op.kind is OpKind.MALLOC:
                assert op.tid == 0
            else:
                assert op.tid in (1, 2)

    def test_slot_discipline(self):
        for w in (balanced_churn(2), producer_consumer(), request_fanout()):
            live = set()
            for op in w.ops(seed=3, num_ops=800):
                if op.kind is OpKind.MALLOC:
                    assert op.slot not in live
                    live.add(op.slot)
                else:
                    assert op.slot in live
                    live.discard(op.slot)

    def test_deterministic(self):
        w = producer_consumer()
        assert list(w.ops(seed=5, num_ops=300)) == list(w.ops(seed=5, num_ops=300))


class TestRunner:
    def _mt(self, n, **kw):
        return MultiThreadAllocator(n, config=AllocatorConfig(release_rate=0), **kw)

    def test_balanced_run(self):
        w = balanced_churn(2)
        result = run_multithreaded(self._mt(2), w.ops(seed=1, num_ops=800), name=w.name)
        assert result.allocator_cycles > 0
        assert set(result.per_thread_cycles) == {0, 1}

    def test_producer_consumer_generates_migration(self):
        w = producer_consumer(1, 1)
        mt = self._mt(2)
        run_multithreaded(mt, w.ops(seed=1, num_ops=1000))
        moved = sum(c.stats.objects_moved_in for c in mt.shared.central_lists)
        assert moved > 0
        mt.check_conservation()

    def test_coherent_fanout_produces_transfers(self):
        w = request_fanout(num_workers=2)
        mt = self._mt(3, coherent=True)
        result = run_multithreaded(mt, w.ops(seed=1, num_ops=800))
        assert result.coherence_transfers > 0

    def test_balanced_cheaper_than_producer_consumer(self):
        """Owning your frees is the friendly case (Section 2)."""
        balanced = run_multithreaded(
            self._mt(2, coherent=True), balanced_churn(2).ops(seed=1, num_ops=1000)
        )
        crossing = run_multithreaded(
            self._mt(2, coherent=True), producer_consumer(1, 1).ops(seed=1, num_ops=1000)
        )
        per_call_b = balanced.allocator_cycles / len(balanced.records)
        per_call_x = crossing.allocator_cycles / len(crossing.records)
        assert per_call_b < per_call_x

"""Tests for the microbenchmark generators."""

import pytest

from repro.alloc.size_classes import SizeClassTable
from repro.workloads import MICROBENCHMARKS
from repro.workloads.base import Op, OpKind
from repro.workloads.micro import antagonist, gauss, gauss_free, sized_deletes, tp, tp_small

TABLE = SizeClassTable.generate()


def measured(ops):
    return [o for o in ops if not o.warmup]


def check_slot_discipline(ops):
    """Every free references a live slot; no slot is allocated twice."""
    live = set()
    for op in ops:
        if op.kind is OpKind.MALLOC:
            assert op.slot not in live
            live.add(op.slot)
        elif op.kind in (OpKind.FREE, OpKind.FREE_SIZED):
            assert op.slot in live
            live.discard(op.slot)


def classes_used(ops):
    return {
        TABLE.size_class_of(o.size)
        for o in ops
        if o.kind is OpKind.MALLOC and not o.warmup
    }


class TestStrided:
    def test_tp_sizes(self):
        ops = measured(list(tp.ops(num_ops=400)))
        sizes = {o.size for o in ops if o.kind is OpKind.MALLOC}
        assert min(sizes) == 32 and max(sizes) <= 512
        assert all(s % 16 == 0 for s in sizes)

    def test_tp_uses_about_25_classes(self):
        """The paper's Figure 17 inflection: tp touches ~25 size classes."""
        ops = list(tp.ops(num_ops=2000))
        assert 20 <= len(classes_used(ops)) <= 28

    def test_tp_small_uses_4_classes(self):
        ops = list(tp_small.ops(num_ops=600))
        assert len(classes_used(ops)) == 4

    def test_sized_deletes_uses_8_classes_and_sized_frees(self):
        ops = list(sized_deletes.ops(num_ops=600))
        assert len(classes_used(ops)) == 8
        frees = [o for o in measured(ops) if o.kind is not OpKind.MALLOC]
        assert frees and all(o.kind is OpKind.FREE_SIZED for o in frees)

    def test_tp_frees_are_plain(self):
        ops = measured(list(tp.ops(num_ops=200)))
        frees = [o for o in ops if o.kind is not OpKind.MALLOC]
        assert frees and all(o.kind is OpKind.FREE for o in frees)

    def test_back_to_back_pairs(self):
        ops = measured(list(tp_small.ops(num_ops=100)))
        for m, f in zip(ops[::2], ops[1::2]):
            assert m.kind is OpKind.MALLOC and f.kind is OpKind.FREE
            assert m.slot == f.slot

    def test_warmup_present_and_flagged(self):
        ops = list(tp_small.ops(num_ops=100))
        assert any(o.warmup for o in ops)
        assert any(not o.warmup for o in ops)

    def test_slot_discipline(self):
        for w in (tp, tp_small, sized_deletes):
            check_slot_discipline(w.ops(num_ops=300))

    def test_deterministic(self):
        a = list(tp.ops(seed=1, num_ops=200))
        b = list(tp.ops(seed=2, num_ops=200))
        assert a == b  # strided benchmarks ignore the seed

    def test_op_count_respected(self):
        ops = measured(list(tp.ops(num_ops=250)))
        assert 250 <= len(ops) <= 252


class TestGaussian:
    def test_gauss_never_frees(self):
        ops = measured(list(gauss.ops(num_ops=400)))
        assert all(o.kind is OpKind.MALLOC for o in ops)

    def test_gauss_size_mix(self):
        """90% small 16-64, 10% large 256-512."""
        ops = measured(list(gauss.ops(seed=5, num_ops=2000)))
        small = sum(1 for o in ops if 16 <= o.size <= 64)
        large = sum(1 for o in ops if 256 <= o.size <= 512)
        assert small + large == len(ops)
        assert 0.85 <= small / len(ops) <= 0.95

    def test_gauss_free_frees_about_half(self):
        ops = measured(list(gauss_free.ops(seed=5, num_ops=2000)))
        frees = sum(1 for o in ops if o.kind is OpKind.FREE)
        mallocs = sum(1 for o in ops if o.kind is OpKind.MALLOC)
        assert 0.3 <= frees / mallocs <= 0.6

    def test_antagonist_emits_evictions(self):
        ops = list(antagonist.ops(seed=1, num_ops=500))
        evictions = sum(1 for o in ops if o.kind is OpKind.ANTAGONIZE)
        mallocs = sum(1 for o in ops if o.kind is OpKind.MALLOC and not o.warmup)
        assert evictions >= mallocs  # one per measured allocation

    def test_gauss_like_deterministic_per_seed(self):
        a = list(gauss_free.ops(seed=7, num_ops=300))
        b = list(gauss_free.ops(seed=7, num_ops=300))
        c = list(gauss_free.ops(seed=8, num_ops=300))
        assert a == b
        assert a != c

    def test_slot_discipline(self):
        for w in (gauss, gauss_free, antagonist):
            check_slot_discipline(w.ops(seed=3, num_ops=500))


class TestRegistry:
    def test_all_six_registered(self):
        assert set(MICROBENCHMARKS) == {
            "antagonist",
            "gauss",
            "gauss_free",
            "sized_deletes",
            "tp",
            "tp_small",
        }

    def test_descriptions_present(self):
        assert all(w.description for w in MICROBENCHMARKS.values())

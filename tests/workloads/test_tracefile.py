"""Tests for trace-file record/replay."""

import pytest

from repro.harness.runner import run_workload
from repro.harness.experiments import make_baseline
from repro.workloads import MICROBENCHMARKS
from repro.workloads.base import Op, OpKind
from repro.workloads.tracefile import (
    HEADER,
    TraceFormatError,
    dump_ops,
    format_op,
    load_ops,
    parse_line,
    trace_workload,
)


class TestFormat:
    def test_roundtrip_each_kind(self):
        ops = [
            Op(OpKind.MALLOC, size=64, slot=0, gap_cycles=10, app_lines=3),
            Op(OpKind.ANTAGONIZE),
            Op(OpKind.FREE, slot=0, gap_cycles=5),
            Op(OpKind.MALLOC, size=32, slot=1, warmup=True),
            Op(OpKind.FREE_SIZED, size=32, slot=1),
        ]
        parsed = [parse_line(format_op(op), i) for i, op in enumerate(ops)]
        assert parsed == ops

    def test_comments_and_blanks_skipped(self):
        assert parse_line("# hello") is None
        assert parse_line("   ") is None
        assert parse_line(HEADER) is None

    def test_unknown_code_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown op code"):
            parse_line("x 1 2", 7)

    def test_bad_integers_rejected(self):
        with pytest.raises(TraceFormatError, match="bad integer"):
            parse_line("m one 64", 3)

    def test_too_few_fields(self):
        with pytest.raises(TraceFormatError, match="too few"):
            parse_line("m 5", 2)

    def test_defaults_for_optional_fields(self):
        op = parse_line("m 3 128")
        assert op.gap_cycles == 0 and op.app_lines == 0 and not op.warmup


class TestFiles:
    def test_dump_and_load(self, tmp_path):
        path = tmp_path / "t.trace"
        ops = list(MICROBENCHMARKS["tp_small"].ops(num_ops=120))
        written = dump_ops(ops, path)
        loaded = load_ops(path)
        assert written == len(ops)
        assert loaded == ops

    def test_validation_catches_double_malloc(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(f"{HEADER}\nm 0 64\nm 0 64\n")
        with pytest.raises(TraceFormatError, match="already live"):
            load_ops(path)

    def test_validation_catches_dead_free(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(f"{HEADER}\nf 7 64\n")
        with pytest.raises(TraceFormatError, match="dead slot"):
            load_ops(path)

    def test_validation_catches_zero_size(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(f"{HEADER}\nm 0 0\n")
        with pytest.raises(TraceFormatError, match="size"):
            load_ops(path)


class TestReplay:
    def test_replay_matches_generated_run(self, tmp_path):
        """A recorded trace replays to exactly the same cycle counts as the
        generator it was recorded from."""
        path = tmp_path / "tp.trace"
        ops = list(MICROBENCHMARKS["tp_small"].ops(seed=1, num_ops=200))
        dump_ops(ops, path)
        workload = trace_workload(path)

        direct = run_workload(make_baseline(), iter(ops))
        replayed = run_workload(make_baseline(), workload.ops())
        assert [r.cycles for r in direct.records] == [
            r.cycles for r in replayed.records
        ]

    def test_workload_metadata(self, tmp_path):
        path = tmp_path / "x.trace"
        dump_ops(list(MICROBENCHMARKS["gauss"].ops(seed=2, num_ops=50)), path)
        w = trace_workload(path, name="custom")
        assert w.name == "custom"
        assert w.default_ops > 0
        assert "recorded trace" in w.description

"""Differential tests for the batched fork-server harness.

``tests/integration/test_parallel_differential.py`` pins the original
contract — sharding is invisible to the science.  This suite pins the
amortization layer added on top: cell batching, the fork-server warm bank,
and one-pool-per-run must *also* be invisible:

* a ``jobs=N, batch_size=K`` run serializes to exactly the serial bytes,
  under any ``PYTHONHASHSEED``;
* the warm bank never perturbs a counter — per-cell summaries and metrics
  are identical with and without a bank installed (telemetry neutrality);
* checkpoint directories written by batched and unbatched runs resume each
  other freely;
* one executor serves all retry rounds (rebuilt only after a worker is
  killed outright), and a worker kill retries only the batches that were
  in flight — completed, checkpointed batches never re-run.
"""

import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import repro

from repro.harness.parallel import (
    CellResult,
    SweepCell,
    build_matrix,
    build_warm_bank,
    checkpoint_path,
    matrix_to_json,
    run_cell,
    run_matrix,
)
from repro.sim import warm as warm_state

MATRIX_WORKLOADS = ["tp_small", "gauss_free"]
MATRIX_SIZES = (4, 32)
MATRIX_OPS = 250

_FAIL_ONCE_DIR_ENV = "REPRO_TEST_FAIL_ONCE_DIR"


def _smoke_cells():
    return build_matrix(MATRIX_WORKLOADS, cache_sizes=MATRIX_SIZES, num_ops=MATRIX_OPS)


def _src_dir() -> str:
    return str(Path(repro.__file__).resolve().parents[1])


def _fake_result(cell: SweepCell) -> CellResult:
    return CellResult(
        cell_id=cell.cell_id,
        workload=cell.workload,
        cache_entries=cell.cache_entries,
        num_ops=cell.num_ops,
        seed=cell.seed,
        summary={"malloc_improvement": 1.0},
    )


def _kill_worker_on_gauss(cell: SweepCell) -> CellResult:
    """Module-level (picklable) cell function that hard-kills the worker
    for one workload family — simulating an OOM-kill/segfault mid-batch."""
    if cell.workload == "gauss_free":
        os._exit(17)
    return _fake_result(cell)


def _fail_once_on_gauss(cell: SweepCell) -> CellResult:
    """Raises (an ordinary exception, no worker death) the first time each
    gauss cell runs; marker files make it cross-process idempotent."""
    if cell.workload == "gauss_free":
        marker = Path(os.environ[_FAIL_ONCE_DIR_ENV]) / f"{cell.cell_id}.failed"
        if not marker.exists():
            marker.write_text("x")
            raise RuntimeError("transient")
    return _fake_result(cell)


class TestBatchedByteIdentity:
    def test_batched_runs_match_serial_bytes(self):
        cells = _smoke_cells()
        serial = run_matrix(cells, jobs=1)
        want = matrix_to_json(serial)
        for batch_size in (None, 1, 2, 3):
            batched = run_matrix(cells, jobs=2, batch_size=batch_size)
            assert matrix_to_json(batched) == want, f"batch_size={batch_size}"
            # The pooled per-cell metrics registry must merge to the same
            # payload too — the warm bank touches no per-cell counter.
            assert batched.stats.metrics == serial.stats.metrics

    def test_no_prewarm_matches_too(self):
        cells = _smoke_cells()
        assert matrix_to_json(run_matrix(cells, jobs=2, prewarm=False)) == (
            matrix_to_json(run_matrix(cells, jobs=1))
        )

    def test_batched_matrix_immune_to_hash_randomization(self):
        """A full batched pool run reproduces identical bytes under any
        PYTHONHASHSEED — the warm bank travels between processes whose
        string hashes disagree (FingerprintKey re-derives its hash)."""
        code = (
            "from repro.harness.parallel import build_matrix, matrix_to_json,"
            " run_matrix\n"
            f"cells = build_matrix({MATRIX_WORKLOADS!r}, cache_sizes=(32,),"
            f" num_ops=200)\n"
            "print(matrix_to_json(run_matrix(cells, jobs=2, batch_size=2)))\n"
        )
        outs = set()
        for hashseed in ("0", "271828"):
            env = {**os.environ, "PYTHONHASHSEED": hashseed,
                   "PYTHONPATH": _src_dir()}
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            )
            outs.add(proc.stdout)
        serial = run_matrix(
            build_matrix(MATRIX_WORKLOADS, cache_sizes=(32,), num_ops=200),
            jobs=1,
        )
        assert outs == {matrix_to_json(serial) + "\n"}


class TestWarmBank:
    def test_bank_is_telemetry_neutral(self):
        """Cell results with a bank installed are *equal* to cold ones —
        summaries, metrics, manifests-independent fields, everything the
        science reads — while the bank itself demonstrably hits."""
        cells = _smoke_cells()
        cold = [run_cell(c) for c in cells]
        bank = build_warm_bank(cells)
        warm_state.install_bank(bank)
        try:
            warmed = [run_cell(c) for c in cells]
        finally:
            warm_state.clear_bank()
        for c, w in zip(cold, warmed):
            assert c.summary == w.summary
            assert c.metrics == w.metrics
            assert (c.intern_hits, c.intern_misses) == (w.intern_hits, w.intern_misses)
        assert bank.schedule_hits > 0
        assert bank.template_hits > 0
        assert bank.stream_hits > 0

    def test_bank_pickle_roundtrip_still_hits(self):
        """The spawn-safety path: a pickled+unpickled bank (new
        FingerprintKey hashes) serves the same lookups."""
        cells = _smoke_cells()[:1]
        cold = run_cell(cells[0])
        clone = pickle.loads(pickle.dumps(build_warm_bank(cells)))
        warm_state.install_bank(clone)
        try:
            warmed = run_cell(cells[0])
        finally:
            warm_state.clear_bank()
        assert warmed.summary == cold.summary
        assert clone.schedule_hits > 0

    def test_bank_crosses_hashseed_boundary(self, tmp_path):
        """A bank built here and loaded in a process with a different
        PYTHONHASHSEED must still hit and still change nothing."""
        cell = SweepCell(workload="tp_small", cache_entries=8, num_ops=150, seed=2)
        bank_file = tmp_path / "bank.pkl"
        bank_file.write_bytes(pickle.dumps(build_warm_bank([cell])))
        code = (
            "import json, pickle\n"
            "from repro.harness.parallel import SweepCell, run_cell\n"
            "from repro.sim import warm\n"
            f"bank = pickle.loads(open({str(bank_file)!r}, 'rb').read())\n"
            "warm.install_bank(bank)\n"
            "r = run_cell(SweepCell(workload='tp_small', cache_entries=8,"
            " num_ops=150, seed=2))\n"
            "print(json.dumps(r.summary, sort_keys=True))\n"
            "assert bank.schedule_hits > 0, 'bank never hit'\n"
        )
        outs = set()
        for hashseed in ("0", "31415"):
            env = {**os.environ, "PYTHONHASHSEED": hashseed,
                   "PYTHONPATH": _src_dir()}
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            )
            outs.add(proc.stdout.strip())
        assert outs == {json.dumps(run_cell(cell).summary, sort_keys=True)}


class TestMixedCheckpointResume:
    def test_batched_dir_resumes_serially_and_back(self, tmp_path):
        """Checkpoint dirs are batching-agnostic: write batched, resume
        unbatched; write serial, resume batched — same bytes either way."""
        cells = _smoke_cells()
        want = matrix_to_json(run_matrix(cells, jobs=1))

        batched_dir = tmp_path / "batched"
        run_matrix(cells, jobs=2, batch_size=3, checkpoint_dir=batched_dir)
        for cell in cells[:2]:
            checkpoint_path(batched_dir, cell).unlink()
        resumed = run_matrix(cells, jobs=1, checkpoint_dir=batched_dir, resume=True)
        assert resumed.stats.cells_resumed == len(cells) - 2
        assert matrix_to_json(resumed) == want

        serial_dir = tmp_path / "serial"
        run_matrix(cells, jobs=1, checkpoint_dir=serial_dir)
        for cell in cells[2:]:
            checkpoint_path(serial_dir, cell).unlink()
        resumed = run_matrix(
            cells, jobs=2, batch_size=2, checkpoint_dir=serial_dir, resume=True
        )
        assert resumed.stats.cells_resumed == 2
        assert matrix_to_json(resumed) == want


class TestPoolLifecycle:
    def test_one_pool_survives_retry_rounds(self, tmp_path, monkeypatch):
        """Ordinary cell exceptions are retried on the *same* executor —
        the pool is rebuilt only for worker deaths."""
        monkeypatch.setenv(_FAIL_ONCE_DIR_ENV, str(tmp_path))
        cells = _smoke_cells()
        result = run_matrix(
            cells, jobs=2, max_retries=2, backoff_seconds=0.0,
            cell_fn=_fail_once_on_gauss,
        )
        assert result.quarantined == {}
        assert result.stats.cells_retried > 0
        assert result.stats.pools_created == 1

    def test_clean_run_creates_one_pool(self):
        result = run_matrix(_smoke_cells(), jobs=2)
        assert result.stats.pools_created == 1
        assert result.stats.batches > 0
        assert result.stats.batch_size >= 1

    def test_inline_run_creates_no_pool(self):
        result = run_matrix(_smoke_cells(), jobs=1)
        assert result.stats.pools_created == 0
        assert result.stats.batch_size == 1

    def test_killed_worker_rebuilds_pool_and_spares_done_batches(self):
        """A hard worker kill breaks the pool: only in-flight batches are
        retried (completed cells never reappear in a retry round), the
        poison family is quarantined, innocents complete, and the rebuild
        is observable as pools_created > 1."""
        events = []
        cells = _smoke_cells()
        result = run_matrix(
            cells, jobs=2, max_retries=3, backoff_seconds=0.0,
            cell_fn=_kill_worker_on_gauss, progress=events.append,
        )
        poisoned = {c.cell_id for c in cells if c.workload == "gauss_free"}
        assert set(result.quarantined) == poisoned
        assert set(result.results) == {c.cell_id for c in cells} - poisoned
        assert result.stats.pools_created > 1

        completed_so_far: set[str] = set()
        for event in events:
            if event["event"] == "cell_done":
                completed_so_far.add(event["cell"])
            elif event["event"] == "retry_round":
                assert not completed_so_far & set(event["cells"]), (
                    "a completed cell was re-queued for retry"
                )

"""Differential sweep: memoized vs unmemoized replays are bit-identical.

Every workload family — micro, macro, adversarial, multithreaded — is
replayed twice on fresh machines, once with trace-scheduling memoization on
and once with it off, and the full observable surface is compared: per-call
cycle counts, ablated cycle dicts, taken paths, and aggregate accounting.
This is the guarantee the tentpole rests on; any scheduler read outside the
fingerprinted fields, or any mutation of a shared cached result, shows up
here as a diff.

Op counts are kept modest so the sweep stays a few seconds of suite time;
the full-scale replay lives in ``benchmarks/bench_trace_cache.py``.
"""

import pytest

from repro.alloc.multithread import MultiThreadAllocator
from repro.harness.experiments import make_baseline, make_mallacc
from repro.harness.runner import run_multithreaded, run_workload
from repro.workloads import (
    MACRO_WORKLOADS,
    MICROBENCHMARKS,
    class_thrash,
    prefetch_trap,
)
from repro.workloads.threads import balanced_churn, producer_consumer

LIMIT_ABLATION = "limit_study"


def _observable(result):
    """Everything a replay exposes that memoization must not perturb."""
    return {
        "cycles": [r.cycles for r in result.records],
        "ablated": [dict(r.ablated) for r in result.records],
        "paths": [r.path.value for r in result.records],
        "app_cycles": result.app_cycles,
        "warmup": (result.warmup_calls, result.warmup_cycles),
    }


def _replay(workload, memoize, *, allocator, num_ops, model_app_traffic=True):
    alloc = allocator(memoize_traces=memoize)
    ops = workload.ops(seed=7, num_ops=num_ops)
    return run_workload(
        alloc, ops, name=workload.name, model_app_traffic=model_app_traffic
    )


def _assert_differential(workload, *, allocator, num_ops, model_app_traffic=True):
    on = _replay(
        workload, True, allocator=allocator, num_ops=num_ops,
        model_app_traffic=model_app_traffic,
    )
    off = _replay(
        workload, False, allocator=allocator, num_ops=num_ops,
        model_app_traffic=model_app_traffic,
    )
    assert _observable(on) == _observable(off)
    assert on.trace_cache_lookups > 0
    assert on.trace_cache_hits > 0, "memoized replay never hit its cache"
    assert off.trace_cache_lookups == 0  # disabled run must not count lookups
    return on


class TestMicro:
    @pytest.mark.parametrize("name", ["tp_small", "gauss", "antagonist"])
    @pytest.mark.parametrize("allocator", [make_baseline, make_mallacc])
    def test_bit_identical(self, name, allocator):
        _assert_differential(
            MICROBENCHMARKS[name], allocator=allocator, num_ops=600
        )

    def test_steady_state_hit_rate_is_high(self):
        """Fast-path-dominated microbenchmarks are the best case: after the
        first few distinct shapes everything is a hit."""
        on = _assert_differential(
            MICROBENCHMARKS["tp_small"], allocator=make_baseline, num_ops=600
        )
        assert on.trace_cache_hit_rate > 0.8


class TestMacro:
    @pytest.mark.parametrize("name", ["400.perlbench", "483.xalancbmk"])
    @pytest.mark.parametrize("allocator", [make_baseline, make_mallacc])
    def test_bit_identical(self, name, allocator):
        # App-traffic modeling on for perlbench (full-fidelity path, fewer
        # ops), off for xalancbmk (its large per-op line counts dominate
        # runtime without touching the scheduler under test).
        app = name == "400.perlbench"
        _assert_differential(
            MACRO_WORKLOADS[name],
            allocator=allocator,
            num_ops=200 if app else 400,
            model_app_traffic=app,
        )


class TestAdversarial:
    @pytest.mark.parametrize("make", [class_thrash, prefetch_trap])
    @pytest.mark.parametrize("allocator", [make_baseline, make_mallacc])
    def test_bit_identical(self, make, allocator):
        _assert_differential(make(), allocator=allocator, num_ops=500)

    def test_class_thrash_under_tiny_cache(self):
        """Heavy eviction pressure (capacity far below the working set of
        distinct shapes) must still be bit-identical."""
        from repro.sim.timing import CoreConfig

        workload = class_thrash()
        ops = list(workload.ops(seed=7, num_ops=500))

        off = run_workload(make_baseline(memoize_traces=False), list(ops))
        tiny_alloc = make_baseline()
        tiny_alloc.machine.timing.config = CoreConfig(trace_cache_entries=2)
        tiny_alloc.machine.timing.set_memoization(False)
        tiny_alloc.machine.timing.set_memoization(True)
        tiny = run_workload(tiny_alloc, list(ops))
        assert _observable(tiny) == _observable(off)
        assert tiny_alloc.machine.timing.cache_stats.evictions > 0


def _mt_observable(result):
    return {
        "cycles": [r.cycles for r in result.records],
        "paths": [r.path.value for r in result.records],
        "per_thread": dict(result.per_thread_cycles),
        "contention": result.contention_cycles,
        "coherence": result.coherence_transfers,
    }


class TestMultithreaded:
    @pytest.mark.parametrize("accelerated", [False, True])
    @pytest.mark.parametrize(
        "make", [lambda: balanced_churn(4), lambda: producer_consumer()]
    )
    def test_bit_identical(self, make, accelerated):
        workload = make()

        def replay(memoize):
            mt = MultiThreadAllocator(
                4, accelerated=accelerated, memoize_traces=memoize
            )
            return run_multithreaded(
                mt, workload.ops(seed=7, num_ops=600), name=workload.name
            )

        on, off = replay(True), replay(False)
        assert _mt_observable(on) == _mt_observable(off)
        assert on.trace_cache_hits > 0
        assert off.trace_cache_hits == 0 and off.trace_cache_misses == 0

    def test_coherent_cores_count_all_caches(self):
        """Coherent mode runs one timing model per core; the aggregate stats
        must cover every core's cache, once each."""
        workload = balanced_churn(4)
        mt = MultiThreadAllocator(4, coherent=True, memoize_traces=True)
        result = run_multithreaded(mt, workload.ops(seed=7, num_ops=600))
        per_core = [m.timing.cache_stats for m in mt.core_machines]
        assert all(s is not None for s in per_core)
        assert result.trace_cache_lookups == sum(s.lookups for s in per_core)
        assert result.trace_cache_hit_rate > 0.5

"""Differential tests for the sampled simulation engine.

Three contracts, end to end:

* **CI coverage** — on the Table 2 full-program protocol (macro workloads,
  20k ops, seed 7, default :class:`SamplingConfig`), the sampled 95% CI
  for program speedup covers the exact value (spot-checked on one workload
  per family: SPEC, masstree, xapian);
* **seed stability** — sampled estimates are byte-identical across
  processes and ``PYTHONHASHSEED`` values (the PR 2 determinism contract
  extended to sampling);
* **exact-mode equivalence** — ``stride=1`` + ``cache_warming='always'``
  reproduces :func:`compare_workload`'s numbers exactly.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.harness.experiments import (
    compare_workload,
    compare_workload_sampled,
    summarize_sampled_comparison,
)
from repro.sim.sampling import SamplingConfig
from repro.workloads import MACRO_WORKLOADS

#: One representative per workload family, cheapest first.
FAMILY_REPRESENTATIVES = ["400.perlbench", "xapian.abstracts", "masstree.same"]


class TestCICoverage:
    @pytest.mark.parametrize("workload", FAMILY_REPRESENTATIVES)
    def test_program_speedup_ci_covers_exact(self, workload):
        """The acceptance protocol: default sampling config, 20k ops."""
        wl = MACRO_WORKLOADS[workload]
        exact = compare_workload(wl, num_ops=20000, seed=7)
        sampled = compare_workload_sampled(
            wl, num_ops=20000, seed=7, sampling=SamplingConfig()
        )
        point, lo, hi = sampled.estimate("program_speedup")
        assert lo <= exact.program_speedup <= hi, (
            f"{workload}: exact {exact.program_speedup:.3f} outside "
            f"sampled CI [{lo:.3f}, {hi:.3f}] (point {point:.3f})"
        )
        # The detailed subset must be a small fraction of the stream.
        assert sampled.baseline.plan.detail_fraction < 0.2


_SUBPROCESS_SNIPPET = """
import json, sys
sys.path.insert(0, {src!r})
from repro.harness.experiments import (
    compare_workload_sampled, summarize_sampled_comparison,
)
from repro.sim.sampling import SamplingConfig
from repro.workloads import MACRO_WORKLOADS

c = compare_workload_sampled(
    MACRO_WORKLOADS["masstree.wcol1"], num_ops=4000, seed=11,
    sampling=SamplingConfig(interval_ops=100, stride=4, warmup_ops=50,
                            sampler={sampler!r}),
)
print(json.dumps(summarize_sampled_comparison(c), sort_keys=True))
"""


def _run_in_subprocess(sampler: str, hashseed: str) -> str:
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    snippet = _SUBPROCESS_SNIPPET.format(src=os.path.abspath(src), sampler=sampler)
    out = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout


class TestSeedStability:
    @pytest.mark.parametrize("sampler", ["systematic", "phase"])
    def test_byte_identical_across_hashseeds(self, sampler):
        """Same sampled summary bytes from processes with different
        PYTHONHASHSEED values — no hash()-ordering anywhere on the
        estimation path (including k-means for the phase sampler)."""
        a = _run_in_subprocess(sampler, "0")
        b = _run_in_subprocess(sampler, "4242")
        assert a == b
        assert json.loads(a)["sampled"] is True

    def test_in_process_repeatability(self):
        wl = MACRO_WORKLOADS["masstree.wcol1"]
        cfg = SamplingConfig(interval_ops=100, stride=4, warmup_ops=50)
        a = compare_workload_sampled(wl, num_ops=4000, seed=11, sampling=cfg)
        b = compare_workload_sampled(wl, num_ops=4000, seed=11, sampling=cfg)
        assert summarize_sampled_comparison(a) == summarize_sampled_comparison(b)


class TestExactModeEquivalence:
    def test_stride_one_always_matches_compare_workload(self):
        wl = MACRO_WORKLOADS["400.perlbench"]
        exact = compare_workload(wl, num_ops=4000, seed=7)
        sampled = compare_workload_sampled(
            wl,
            num_ops=4000,
            seed=7,
            sampling=SamplingConfig(
                interval_ops=100, stride=1, cache_warming="always"
            ),
        )
        for metric in (
            "allocator_improvement",
            "malloc_improvement",
            "allocator_limit_improvement",
            "malloc_limit_improvement",
            "program_speedup",
        ):
            assert getattr(sampled, metric) == pytest.approx(
                getattr(exact, metric), abs=1e-9
            ), metric
        assert sampled.baseline.app_cycles == exact.baseline.app_cycles

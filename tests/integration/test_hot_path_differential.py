"""Differential grid: the emission fast-forward is byte-invisible.

The hot-path work — interned trace templates, the O(1) per-set cache model
with its inlined three-level walk, the batched app-traffic stream, the
cached-fingerprint trace-cache keys — all promise *exact* behavioral
equivalence: any (intern on/off) x (O(1) vs reference caches) combination
must reproduce identical per-call cycles, ablations, paths, and aggregate
accounting on identical op streams.  This suite holds every workload family
to that promise, across serial, multithreaded, and sweep entry points, and
(in subprocesses) across hash-randomization seeds.

The cache implementation is chosen from ``REPRO_CACHE_IMPL`` at hierarchy
construction, so each configuration builds its allocators inside the env
context.  App-traffic modeling stays ON for the single-threaded grids —
that is what routes the batched ``touch_lines`` walk (fast) against the
per-line reference loop.
"""

import os
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
from repro.alloc.multithread import MultiThreadAllocator
from repro.harness.experiments import make_baseline, make_mallacc
from repro.harness.runner import run_multithreaded, run_workload
from repro.harness.sweeps import sweep_cache_sizes
from repro.workloads import MACRO_WORKLOADS, MICROBENCHMARKS, class_thrash
from repro.workloads.threads import balanced_churn

#: (cache impl env value or None for the O(1) default, intern_traces)
GRID = [
    (None, True),
    (None, False),
    ("reference", True),
    ("reference", False),
]


@contextmanager
def _cache_impl(impl):
    saved = os.environ.get("REPRO_CACHE_IMPL")
    if impl is None:
        os.environ.pop("REPRO_CACHE_IMPL", None)
    else:
        os.environ["REPRO_CACHE_IMPL"] = impl
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE_IMPL", None)
        else:
            os.environ["REPRO_CACHE_IMPL"] = saved


def _observable(result):
    """Everything a replay exposes that the fast paths must not perturb."""
    return {
        "cycles": [r.cycles for r in result.records],
        "ablated": [dict(r.ablated) for r in result.records],
        "paths": [r.path.value for r in result.records],
        "app_cycles": result.app_cycles,
        "warmup": (result.warmup_calls, result.warmup_cycles),
        "trace_cache": (result.trace_cache_hits, result.trace_cache_misses),
    }


def _hierarchy_state(machine):
    """Full resident-line state + counters of one machine's hierarchy."""
    h = machine.hierarchy
    return {
        "lines": [
            [sorted(ways) for ways in level._sets] for level in h.levels
        ],
        "counters": [(level.hits, level.misses) for level in h.levels],
        "dram": h.dram_accesses,
        "tlb": (machine.tlb.hits, machine.tlb.misses),
    }


def _grid_replays(workload, allocator, num_ops):
    outs = []
    for impl, intern in GRID:
        with _cache_impl(impl):
            alloc = allocator(intern_traces=intern)
            result = run_workload(
                alloc, workload.ops(seed=7, num_ops=num_ops), name=workload.name
            )
        outs.append((impl, intern, result, alloc))
    return outs


def _assert_grid(workload, allocator, num_ops):
    outs = _grid_replays(workload, allocator, num_ops)
    base = _observable(outs[0][2])
    base_state = _hierarchy_state(outs[0][3].machine)
    for impl, intern, result, alloc in outs[1:]:
        tag = f"impl={impl or 'o1'} intern={intern}"
        assert _observable(result) == base, tag
        assert _hierarchy_state(alloc.machine) == base_state, tag
    # The default config must actually exercise the fast machinery.
    fast = outs[0][3]
    assert fast.machine.hierarchy._fast_demand
    assert fast.machine.interner is not None
    assert fast.machine.interner.stats.hits > 0
    reference = outs[2][3]
    assert not reference.machine.hierarchy._fast
    return outs


class TestSingleThreaded:
    @pytest.mark.parametrize("name", ["tp_small", "gauss_free", "antagonist"])
    def test_micro(self, name):
        _assert_grid(MICROBENCHMARKS[name], make_baseline, 400)

    @pytest.mark.parametrize("name", ["400.perlbench", "masstree.same"])
    @pytest.mark.parametrize("allocator", [make_baseline, make_mallacc])
    def test_macro(self, name, allocator):
        _assert_grid(MACRO_WORKLOADS[name], allocator, 250)

    def test_adversarial(self):
        _assert_grid(class_thrash(), make_mallacc, 300)

    def test_xalanc_heavy_app_traffic(self):
        """xalancbmk has the largest per-op app-line counts: the strongest
        exercise of the batched touch_lines walk vs the per-line loop."""
        _assert_grid(MACRO_WORKLOADS["483.xalancbmk"], make_baseline, 150)


class TestTouchLinesStrides:
    """The batched walk special-cases whole-line strides into a range();
    sub-line and non-multiple strides take the listcomp.  All must match the
    reference hierarchy line-for-line."""

    @pytest.mark.parametrize("stride", [8, 64, 96, 128, 4096])
    def test_stride_equivalence(self, stride):
        from repro.sim.hierarchy import CacheHierarchy

        with _cache_impl(None):
            fast = CacheHierarchy()
        with _cache_impl("reference"):
            ref = CacheHierarchy()
        for base in (0, 1 << 20, 12345):
            fast.touch_lines(base, 300, stride=stride)
            ref.touch_lines(base, 300, stride=stride)
        assert [
            [sorted(w) for w in level._sets] for level in fast.levels
        ] == [[sorted(w) for w in level._sets] for level in ref.levels]
        assert [(l.hits, l.misses) for l in fast.levels] == [
            (l.hits, l.misses) for l in ref.levels
        ]
        assert fast.dram_accesses == ref.dram_accesses


def _mt_observable(result):
    return {
        "cycles": [r.cycles for r in result.records],
        "paths": [r.path.value for r in result.records],
        "per_thread": dict(result.per_thread_cycles),
        "contention": result.contention_cycles,
        "coherence": result.coherence_transfers,
        "trace_cache": (result.trace_cache_hits, result.trace_cache_misses),
    }


class TestMultithreaded:
    @pytest.mark.parametrize("coherent", [False, True])
    def test_bit_identical(self, coherent):
        workload = balanced_churn(4)
        outs = []
        for impl, intern in GRID:
            with _cache_impl(impl):
                mt = MultiThreadAllocator(4, coherent=coherent, intern_traces=intern)
                result = run_multithreaded(
                    mt, workload.ops(seed=7, num_ops=500), name=workload.name
                )
            outs.append(_mt_observable(result))
        assert all(o == outs[0] for o in outs[1:])


class TestSweep:
    def test_sweep_cache_sizes(self):
        workload = MICROBENCHMARKS["tp_small"]
        curves = []
        for impl, intern in GRID:
            with _cache_impl(impl):
                env_intern = os.environ.get("REPRO_TRACE_INTERN")
                os.environ["REPRO_TRACE_INTERN"] = "1" if intern else "0"
                try:
                    r = sweep_cache_sizes(
                        workload, sizes=(4, 16), num_ops=200, seed=3
                    )
                finally:
                    if env_intern is None:
                        os.environ.pop("REPRO_TRACE_INTERN", None)
                    else:
                        os.environ["REPRO_TRACE_INTERN"] = env_intern
            curves.append((r.malloc_speedups, r.allocator_speedups, r.limit_speedup))
        assert all(c == curves[0] for c in curves[1:])


class TestHashRandomization:
    def test_grid_immune_to_hash_seed(self):
        """Dict-ordered structures (per-set LRU dicts, intern tables,
        fingerprint maps) key exclusively on integers and value-hashed
        tuples, so results are identical under any PYTHONHASHSEED — in both
        the fast and the reference configuration."""
        code = (
            "import json\n"
            "from repro.harness.experiments import compare_workload, "
            "summarize_comparison\n"
            "from repro.workloads import MACRO_WORKLOADS\n"
            "c = compare_workload(MACRO_WORKLOADS['400.perlbench'],"
            " num_ops=150, seed=3)\n"
            "print(json.dumps(summarize_comparison(c), sort_keys=True))\n"
        )
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        outs = set()
        for hashseed in ("0", "1", "271828"):
            for overrides in (
                {},
                {"REPRO_CACHE_IMPL": "reference", "REPRO_TRACE_INTERN": "0"},
            ):
                env = {
                    k: v
                    for k, v in os.environ.items()
                    if k not in ("REPRO_CACHE_IMPL", "REPRO_TRACE_INTERN")
                }
                env.update(
                    {"PYTHONHASHSEED": hashseed, "PYTHONPATH": src_dir, **overrides}
                )
                proc = subprocess.run(
                    [sys.executable, "-c", code],
                    capture_output=True, text=True, env=env, check=True,
                )
                outs.add(proc.stdout.strip())
        assert len(outs) == 1


class TestValidateMode:
    def test_validate_mode_clean_on_real_workload(self):
        """REPRO_INTERN_VALIDATE=1 rebuilds every intern hit and asserts
        fingerprint equality; a full macro replay must come through clean
        (every structural decision is tokenized)."""
        saved = os.environ.get("REPRO_INTERN_VALIDATE")
        os.environ["REPRO_INTERN_VALIDATE"] = "1"
        try:
            alloc = make_baseline(intern_traces=True)
            run_workload(
                alloc,
                MACRO_WORKLOADS["400.perlbench"].ops(seed=7, num_ops=250),
                name="validate",
            )
        finally:
            if saved is None:
                os.environ.pop("REPRO_INTERN_VALIDATE", None)
            else:
                os.environ["REPRO_INTERN_VALIDATE"] = saved
        assert alloc.machine.interner.stats.validations > 0

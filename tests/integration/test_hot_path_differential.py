"""Differential grid: the hot-path machinery is byte-invisible.

The hot-path work — interned trace templates, the O(1) per-set cache model
with its inlined three-level walk, the batched app-traffic stream, the
cached-fingerprint trace-cache keys, and the columnar replay engine
(flat-array scheduling, lazy ring hierarchy, arena-slab memory, fused
fast-path twins) — all promise *exact* behavioral equivalence: any
(engine) x (intern on/off) x (O(1) vs reference caches) combination must
reproduce identical per-call cycles, ablations, paths, and aggregate
accounting on identical op streams.  This suite holds every workload
family to that promise, across serial, multithreaded, sampled, traffic,
and sweep entry points, and (in subprocesses) across hash-randomization
seeds.

Both the engine and the cache implementation are chosen from the
environment (``REPRO_ENGINE``, ``REPRO_CACHE_IMPL``) at machine
construction, so each configuration builds its allocators inside the env
context.  App-traffic modeling stays ON for the single-threaded grids —
that is what routes the batched ``touch_lines`` walk (fast) against the
per-line reference loop, and the lazy ring hierarchy against both.
"""

import os
import random
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
from repro.alloc.multithread import MultiThreadAllocator
from repro.harness.experiments import make_baseline, make_mallacc
from repro.harness.runner import run_multithreaded, run_workload
from repro.harness.sweeps import sweep_cache_sizes
from repro.workloads import MACRO_WORKLOADS, MICROBENCHMARKS, class_thrash
from repro.workloads.base import Op, OpKind, Workload
from repro.workloads.threads import balanced_churn

#: (engine env value or None for the columnar default,
#:  cache impl env value or None for the O(1) default,
#:  intern_traces)
GRID = [
    (None, None, True),
    (None, None, False),
    (None, "reference", True),
    ("reference", None, True),
    ("reference", None, False),
    ("reference", "reference", True),
]

_ENV_KEYS = ("REPRO_ENGINE", "REPRO_CACHE_IMPL")


@contextmanager
def _engine_env(engine, impl):
    saved = {k: os.environ.get(k) for k in _ENV_KEYS}
    for key, value in (("REPRO_ENGINE", engine), ("REPRO_CACHE_IMPL", impl)):
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _observable(result):
    """Everything a replay exposes that the fast paths must not perturb."""
    return {
        "cycles": [r.cycles for r in result.records],
        "ablated": [dict(r.ablated) for r in result.records],
        "paths": [r.path.value for r in result.records],
        "app_cycles": result.app_cycles,
        "warmup": (result.warmup_calls, result.warmup_cycles),
        "trace_cache": (result.trace_cache_hits, result.trace_cache_misses),
    }


def _hierarchy_state(machine):
    """Full resident-line state + counters of one machine's hierarchy."""
    h = machine.hierarchy
    return {
        "lines": [
            [sorted(ways) for ways in level._sets] for level in h.levels
        ],
        "counters": [(level.hits, level.misses) for level in h.levels],
        "dram": h.dram_accesses,
        "tlb": (machine.tlb.hits, machine.tlb.misses),
    }


def _grid_replays(workload, allocator, num_ops):
    outs = []
    for engine, impl, intern in GRID:
        with _engine_env(engine, impl):
            alloc = allocator(intern_traces=intern)
            result = run_workload(
                alloc, workload.ops(seed=7, num_ops=num_ops), name=workload.name
            )
        outs.append((engine, impl, intern, result, alloc))
    return outs


def _assert_grid(workload, allocator, num_ops):
    outs = _grid_replays(workload, allocator, num_ops)
    base = _observable(outs[0][3])
    base_state = _hierarchy_state(outs[0][4].machine)
    for engine, impl, intern, result, alloc in outs[1:]:
        tag = f"engine={engine or 'columnar'} impl={impl or 'o1'} intern={intern}"
        assert _observable(result) == base, tag
        assert _hierarchy_state(alloc.machine) == base_state, tag
    # The default config must actually exercise the fast machinery.
    fast = outs[0][4]
    assert fast.machine.hierarchy._fast_demand
    assert fast.machine.interner is not None
    assert fast.machine.interner.stats.hits > 0
    if allocator is make_baseline:
        # Compilation is lazy (second schedule of a template), and the
        # accelerated allocator's fused twins can satisfy short replays
        # without ever re-scheduling — so only the baseline is guaranteed
        # to compile here.
        assert fast.machine.timing.columnar_compiles > 0
    reference_impl = outs[2][4]
    assert not reference_impl.machine.hierarchy._fast
    # ... and the reference engine must stay on the object model.
    reference_engine = outs[3][4]
    assert reference_engine.machine.timing.columnar_compiles == 0
    return outs


class TestSingleThreaded:
    @pytest.mark.parametrize("name", ["tp_small", "gauss_free", "antagonist"])
    def test_micro(self, name):
        _assert_grid(MICROBENCHMARKS[name], make_baseline, 400)

    @pytest.mark.parametrize("name", ["400.perlbench", "masstree.same"])
    @pytest.mark.parametrize("allocator", [make_baseline, make_mallacc])
    def test_macro(self, name, allocator):
        _assert_grid(MACRO_WORKLOADS[name], allocator, 250)

    def test_adversarial(self):
        _assert_grid(class_thrash(), make_mallacc, 300)

    def test_xalanc_heavy_app_traffic(self):
        """xalancbmk has the largest per-op app-line counts: the strongest
        exercise of the batched touch_lines walk vs the per-line loop, and
        of the lazy ring hierarchy vs both."""
        _assert_grid(MACRO_WORKLOADS["483.xalancbmk"], make_baseline, 150)


class TestTouchLinesStrides:
    """The batched walk special-cases whole-line strides into a range();
    sub-line and non-multiple strides take the listcomp.  All must match the
    reference hierarchy line-for-line."""

    @pytest.mark.parametrize("stride", [8, 64, 96, 128, 4096])
    def test_stride_equivalence(self, stride):
        from repro.sim.hierarchy import CacheHierarchy

        with _engine_env(None, None):
            fast = CacheHierarchy()
        with _engine_env(None, "reference"):
            ref = CacheHierarchy()
        for base in (0, 1 << 20, 12345):
            fast.touch_lines(base, 300, stride=stride)
            ref.touch_lines(base, 300, stride=stride)
        assert [
            [sorted(w) for w in level._sets] for level in fast.levels
        ] == [[sorted(w) for w in level._sets] for level in ref.levels]
        assert [(l.hits, l.misses) for l in fast.levels] == [
            (l.hits, l.misses) for l in ref.levels
        ]
        assert fast.dram_accesses == ref.dram_accesses


def _mt_observable(result):
    return {
        "cycles": [r.cycles for r in result.records],
        "paths": [r.path.value for r in result.records],
        "per_thread": dict(result.per_thread_cycles),
        "contention": result.contention_cycles,
        "coherence": result.coherence_transfers,
        "trace_cache": (result.trace_cache_hits, result.trace_cache_misses),
    }


class TestMultithreaded:
    @pytest.mark.parametrize("coherent", [False, True])
    def test_bit_identical(self, coherent):
        workload = balanced_churn(4)
        outs = []
        for engine, impl, intern in GRID:
            with _engine_env(engine, impl):
                mt = MultiThreadAllocator(4, coherent=coherent, intern_traces=intern)
                result = run_multithreaded(
                    mt, workload.ops(seed=7, num_ops=500), name=workload.name
                )
            outs.append(_mt_observable(result))
        assert all(o == outs[0] for o in outs[1:])


def _refill_gen(seed, num_ops):
    """A refill-torture stream: small-object churn with free bursts
    (overflow releases, transfer-cache parks), large-span traffic
    (page-heap splits, coalesces, release-to-OS), and one slow-start-aware
    "scavenge bomb" — big same-class bursts grow ``max_length`` past the
    holding count, so the frees accumulate > 2 MB in the thread cache
    without overflowing any single list, tripping the scavenge; the
    re-alloc burst afterwards drains the cache and unparks what the
    scavenge just parked in the transfer cache."""
    rng = random.Random(seed)
    slot = 0
    emitted = 0
    live = []
    big = []
    bombed = False
    while emitted < num_ops:
        r = rng.random()
        if not bombed and emitted > num_ops // 4:
            bombed = True
            burst = []
            for size, count in ((8192, 80), (16384, 60), (32768, 40)):
                for _ in range(count):
                    yield Op(OpKind.MALLOC, size=size, slot=slot, gap_cycles=1)
                    burst.append((slot, size))
                    slot += 1
                    emitted += 1
            for s, size in burst:
                yield Op(OpKind.FREE_SIZED, size=size, slot=s, gap_cycles=1)
                emitted += 1
            for size, count in ((8192, 120), (16384, 90), (32768, 60)):
                for _ in range(count):
                    yield Op(OpKind.MALLOC, size=size, slot=slot, gap_cycles=1)
                    live.append((slot, size))
                    slot += 1
                    emitted += 1
            continue
        if r < 0.10 and live:
            for _ in range(min(len(live), rng.randint(20, 60))):
                s, size = live.pop(rng.randrange(len(live)))
                sized = rng.random() < 0.5
                yield Op(
                    OpKind.FREE_SIZED if sized else OpKind.FREE,
                    size=size if sized else 0, slot=s, gap_cycles=1,
                )
                emitted += 1
        elif r < 0.14:
            yield Op(
                OpKind.MALLOC, size=rng.choice([266240, 300000, 600000]),
                slot=slot, gap_cycles=1,
            )
            big.append(slot)
            slot += 1
            emitted += 1
            if len(big) > 2:
                yield Op(OpKind.FREE, slot=big.pop(0), gap_cycles=1)
                emitted += 1
        else:
            size = rng.choice([16, 32, 64, 64, 96, 128, 256, 1024])
            yield Op(OpKind.MALLOC, size=size, slot=slot, gap_cycles=1)
            live.append((slot, size))
            slot += 1
            emitted += 1


REFILL_TORTURE = Workload(
    name="refill_torture",
    generator=_refill_gen,
    default_ops=1400,
    description="central fetches, transfer park/unpark, scavenges, "
    "span split/coalesce/release: every slow-path refill shape",
)


def _refill_state(alloc):
    """Every stat the refill machinery mutates: central lists (including
    lock contention and the transfer cache), page heap, thread cache."""
    return {
        "central": [
            (
                c.stats.remove_calls, c.stats.insert_calls, c.stats.populates,
                c.stats.objects_moved_out, c.stats.objects_moved_in,
                c.stats.spans_returned, c.stats.contention_waits,
                c.stats.contention_cycles,
                c.transfer.stats.batch_inserts, c.transfer.stats.batch_removes,
                c.transfer.stats.insert_overflows, c.transfer.stats.remove_misses,
            )
            for c in alloc.central_lists
        ],
        "heap": (
            alloc.page_heap.stats.spans_allocated,
            alloc.page_heap.stats.spans_freed,
            alloc.page_heap.stats.spans_split,
            alloc.page_heap.stats.spans_coalesced,
            alloc.page_heap.stats.system_allocations,
            alloc.page_heap.stats.spans_released,
            alloc.page_heap.stats.bytes_released,
        ),
        "tc": (
            alloc.thread_cache.stats.fetches,
            alloc.thread_cache.stats.releases,
            alloc.thread_cache.stats.scavenges,
            alloc.thread_cache.stats.objects_fetched,
            alloc.thread_cache.stats.objects_released,
            alloc.thread_cache.size_bytes,
        ),
    }


class _CountingTwin:
    """Pure-delegation wrapper proving the fused slow-path twin actually
    served calls (a fallback returns None and doesn't count)."""

    def __init__(self, twin):
        self._twin = twin
        self.served = 0

    def malloc(self, size):
        out = self._twin.malloc(size)
        if out is not None:
            self.served += 1
        return out

    def free(self, ptr, sized_hint):
        out = self._twin.free(ptr, sized_hint)
        if out is not None:
            self.served += 1
        return out


class TestRefillTwins:
    """The fused slow-path refill twins (central-cache remove/insert with
    the transfer cache and lock model, page-heap span alloc/free with the
    radix pagemap, span carving) must be byte-invisible across the full
    grid — including every refill-side stat they shadow."""

    @pytest.mark.parametrize("allocator", [make_baseline, make_mallacc])
    def test_refill_torture_grid(self, allocator):
        outs = []
        twins = []
        for engine, impl, intern in GRID:
            with _engine_env(engine, impl):
                alloc = allocator(intern_traces=intern)
                if alloc._slowpath is not None:
                    alloc._slowpath = _CountingTwin(alloc._slowpath)
                twins.append(alloc._slowpath)
                result = run_workload(
                    alloc,
                    REFILL_TORTURE.ops(seed=11, num_ops=1400),
                    name=REFILL_TORTURE.name,
                )
            outs.append((engine, impl, intern, result, alloc))
        base = _observable(outs[0][3])
        base_state = _hierarchy_state(outs[0][4].machine)
        base_refill = _refill_state(outs[0][4])
        for engine, impl, intern, result, alloc in outs[1:]:
            tag = f"engine={engine or 'columnar'} impl={impl or 'o1'} intern={intern}"
            assert _observable(result) == base, tag
            assert _hierarchy_state(alloc.machine) == base_state, tag
            assert _refill_state(alloc) == base_refill, tag
        # The stream must genuinely hit every refill shape ...
        paths = set(base["paths"])
        assert {"central", "page_alloc", "free_slow", "large", "free_large"} <= paths
        tc = base_refill["tc"]
        assert tc[2] > 0, "no scavenge"
        central = [sum(col) for col in zip(*base_refill["central"])]
        assert central[8] > 0, "no transfer-cache park"
        assert central[9] > 0, "no transfer-cache unpark"
        assert central[5] > 0, "no span returned to the page heap"
        heap = base_refill["heap"]
        assert heap[2] > 0 and heap[3] > 0 and heap[5] > 0, "heap under-exercised"
        # ... and the columnar cells must have served it from the twin.
        assert twins[0] is not None and twins[0].served > 0
        for (engine, _, _), twin in zip(GRID, twins):
            if engine == "reference":
                assert twin is None

    def test_mt_refill_contention(self):
        """The multithreaded leg: contended central-lock waits and
        transfer-cache round-trips priced inside the twins must match the
        reference machinery stat-for-stat."""
        outs = []
        for engine in ("reference", None):
            with _engine_env(engine, None):
                rng = random.Random(3)
                mt = MultiThreadAllocator(num_threads=4, accelerated=True)
                live = []
                for _ in range(2000):
                    tid = rng.randrange(4)
                    if rng.random() < 0.6 or not live:
                        size = rng.choice([24, 64, 128, 512, 2048, 16384])
                        ptr, _rec = mt.malloc(tid, size)
                        live.append((ptr, size))
                    else:
                        ptr, size = live.pop(rng.randrange(len(live)))
                        if rng.random() < 0.5:
                            mt.sized_free(tid, ptr, size)
                        else:
                            mt.free(tid, ptr)
                cs = mt.shared.central_lists
                outs.append({
                    "clock": mt.machine.clock,
                    "per_thread": [(s.mallocs, s.frees, s.cycles) for s in mt.stats],
                    "central": [
                        (
                            c.stats.remove_calls, c.stats.insert_calls,
                            c.stats.populates, c.stats.contention_waits,
                            c.stats.contention_cycles,
                            c.transfer.stats.batch_inserts,
                            c.transfer.stats.batch_removes,
                        )
                        for c in cs
                    ],
                    "heap": (
                        mt.shared.page_heap.stats.spans_allocated,
                        mt.shared.page_heap.stats.spans_freed,
                    ),
                })
        assert outs[0] == outs[1]
        waits = sum(c[3] for c in outs[0]["central"])
        parks = sum(c[5] for c in outs[0]["central"])
        unparks = sum(c[6] for c in outs[0]["central"])
        assert waits > 0, "no contended lock waits"
        assert parks > 0 and unparks > 0, "no transfer-cache traffic"


class TestSampled:
    def test_sampled_fast_forward_bit_identical(self):
        """The sampling fast-forward (deferred app traffic, window flushes)
        rides the same engine plumbing; sampled summaries must agree across
        the full grid."""
        from repro.harness.experiments import (
            compare_workload_sampled,
            summarize_sampled_comparison,
        )
        from repro.sim.sampling import SamplingConfig

        wl = MACRO_WORKLOADS["masstree.wcol1"]
        cfg = SamplingConfig(interval_ops=100, stride=4, warmup_ops=50)
        outs = []
        for engine, impl, intern in GRID:
            if not intern:
                continue  # interning is orthogonal to the sampled planner
            with _engine_env(engine, impl):
                c = compare_workload_sampled(wl, num_ops=2000, seed=11, sampling=cfg)
            outs.append(summarize_sampled_comparison(c))
        assert len(outs) >= 3
        assert all(o == outs[0] for o in outs[1:])


class TestTraffic:
    def test_traffic_engine_bit_identical(self):
        """The open-loop traffic engine dispatches through the same timing
        path; per-call cycles and aggregate accounting must agree across
        engines, including on multiple cores with stochastic arrivals."""
        from repro.traffic import TrafficConfig, run_traffic

        configs = [
            TrafficConfig(
                workload="tp_small", arrival="constant", rps=50.0,
                duration_s=1.0, clock_hz=1_000_000.0, cores=1,
                ops_per_request=24, seed=7, session_mode="stream",
                total_ops=300,
            ),
            TrafficConfig(
                workload="xapian.abstracts", arrival="poisson", rps=200.0,
                duration_s=0.5, clock_hz=1_000_000.0, cores=2,
                ops_per_request=16, seed=9, total_ops=240,
            ),
        ]
        for config in configs:
            outs = []
            for engine in (None, "reference"):
                with _engine_env(engine, None):
                    res = run_traffic(config)
                outs.append(
                    (
                        res.call_cycles,
                        res.alloc_cycles,
                        res.app_cycles,
                        res.contention_cycles,
                        res.completed,
                        res.warmup_calls,
                    )
                )
            assert outs[0] == outs[1], config.workload


class TestSweep:
    def test_sweep_cache_sizes(self):
        workload = MICROBENCHMARKS["tp_small"]
        curves = []
        for engine, impl, intern in GRID:
            with _engine_env(engine, impl):
                env_intern = os.environ.get("REPRO_TRACE_INTERN")
                os.environ["REPRO_TRACE_INTERN"] = "1" if intern else "0"
                try:
                    r = sweep_cache_sizes(
                        workload, sizes=(4, 16), num_ops=200, seed=3
                    )
                finally:
                    if env_intern is None:
                        os.environ.pop("REPRO_TRACE_INTERN", None)
                    else:
                        os.environ["REPRO_TRACE_INTERN"] = env_intern
            curves.append((r.malloc_speedups, r.allocator_speedups, r.limit_speedup))
        assert all(c == curves[0] for c in curves[1:])


class TestEngineProvenance:
    """Engine identity is provenance, not results: it lands in manifests and
    one ``engine_info`` metric series, and nowhere else."""

    def test_manifest_records_engine(self):
        from repro.sim.engine import ENGINE_COLUMNAR, ENGINE_REFERENCE

        wl = MICROBENCHMARKS["tp_small"]
        for env_value, expected in ((None, ENGINE_COLUMNAR),
                                    ("reference", ENGINE_REFERENCE)):
            with _engine_env(env_value, None):
                alloc = make_baseline(intern_traces=True)
                result = run_workload(
                    alloc, wl.ops(seed=7, num_ops=120), name=wl.name
                )
            assert result.manifest.engine == expected
            assert f"engine={expected}" in result.manifest.describe()

    def test_registry_differs_only_in_engine_info(self):
        from repro.obs.bridges import run_registry
        from repro.obs.compare import compare_payloads, payload_engines

        wl = MICROBENCHMARKS["tp_small"]
        payloads = []
        for env_value in (None, "reference"):
            with _engine_env(env_value, None):
                alloc = make_baseline(intern_traces=True)
                result = run_workload(
                    alloc, wl.ops(seed=7, num_ops=120), name=wl.name
                )
            payloads.append(run_registry(result).to_dict())
        engines_a, engines_b = (payload_engines(p) for p in payloads)
        assert engines_a == ("columnar",)
        assert engines_b == ("reference",)
        # The engine marker is the ONE series allowed to differ; everything
        # else must be byte-identical — and the default compare ignores it.
        assert compare_payloads(payloads[0], payloads[1]) == []

    def test_cross_engine_note(self):
        from repro.obs.compare import cross_engine_note

        a = {"manifest": {"engine": "columnar"}}
        b = {"manifest": {"engine": "reference"}}
        note = cross_engine_note(a, b)
        assert note and "cross-engine" in note
        assert cross_engine_note(a, a) is None
        assert cross_engine_note(a, {"other": 1}) is None  # pre-engine payload

    def test_profiler_columnar_compile_stage(self):
        from repro.harness.profile import HotPathProfiler

        wl = MACRO_WORKLOADS["400.perlbench"]
        with _engine_env(None, None):
            alloc = make_baseline(intern_traces=True)
            prof = HotPathProfiler()
            run_workload(
                alloc, wl.ops(seed=7, num_ops=200), name=wl.name, profiler=prof
            )
        summary = prof.summary()
        assert summary["counters"]["columnar_templates_compiled"] > 0
        assert summary["counters"]["columnar_uops_compiled"] > 0
        assert summary["stages"]["columnar_compile"]["entries"] > 0

    def test_reference_engine_never_compiles(self):
        from repro.harness.profile import HotPathProfiler

        wl = MICROBENCHMARKS["tp_small"]
        with _engine_env("reference", None):
            alloc = make_baseline(intern_traces=True)
            prof = HotPathProfiler()
            run_workload(
                alloc, wl.ops(seed=7, num_ops=150), name=wl.name, profiler=prof
            )
        summary = prof.summary()
        assert summary["counters"]["columnar_templates_compiled"] == 0
        assert "columnar_compile" not in summary["stages"]


class TestHashRandomization:
    def test_grid_immune_to_hash_seed(self):
        """Dict-ordered structures (per-set LRU dicts, intern tables,
        fingerprint maps, columnar columns) key exclusively on integers and
        value-hashed tuples, so results are identical under any
        PYTHONHASHSEED — on both engines and both cache implementations."""
        code = (
            "import json\n"
            "from repro.harness.experiments import compare_workload, "
            "summarize_comparison\n"
            "from repro.workloads import MACRO_WORKLOADS\n"
            "c = compare_workload(MACRO_WORKLOADS['400.perlbench'],"
            " num_ops=150, seed=3)\n"
            "print(json.dumps(summarize_comparison(c), sort_keys=True))\n"
        )
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        stripped = ("REPRO_ENGINE", "REPRO_CACHE_IMPL", "REPRO_TRACE_INTERN")
        outs = set()
        for hashseed in ("0", "1", "271828"):
            for overrides in (
                {},
                {"REPRO_ENGINE": "reference"},
                {"REPRO_CACHE_IMPL": "reference", "REPRO_TRACE_INTERN": "0"},
                {"REPRO_ENGINE": "reference", "REPRO_CACHE_IMPL": "reference"},
            ):
                env = {
                    k: v for k, v in os.environ.items() if k not in stripped
                }
                env.update(
                    {"PYTHONHASHSEED": hashseed, "PYTHONPATH": src_dir, **overrides}
                )
                proc = subprocess.run(
                    [sys.executable, "-c", code],
                    capture_output=True, text=True, env=env, check=True,
                )
                outs.add(proc.stdout.strip())
        assert len(outs) == 1


class TestValidateMode:
    def test_validate_mode_clean_on_real_workload(self):
        """REPRO_INTERN_VALIDATE=1 rebuilds every intern hit and asserts
        fingerprint equality; a full macro replay must come through clean
        (every structural decision is tokenized)."""
        saved = os.environ.get("REPRO_INTERN_VALIDATE")
        os.environ["REPRO_INTERN_VALIDATE"] = "1"
        try:
            alloc = make_baseline(intern_traces=True)
            run_workload(
                alloc,
                MACRO_WORKLOADS["400.perlbench"].ops(seed=7, num_ops=250),
                name="validate",
            )
        finally:
            if saved is None:
                os.environ.pop("REPRO_INTERN_VALIDATE", None)
            else:
                os.environ["REPRO_INTERN_VALIDATE"] = saved
        assert alloc.machine.interner.stats.validations > 0

"""Differential tests: the sharded harness vs the serial path.

The contract of ``repro.harness.parallel`` is that sharding is invisible to
the science: every cell builds fresh machines on an identical op stream, so
the figure/table payload of a ``jobs=N`` run serializes to *exactly* the
bytes of the serial run — across worker counts, resumption, and crashes.

Worker-kill fault tolerance is exercised with a cell function that hard-kills
its worker process (``os._exit``): the broken pool must fail only that
round's cells, the poisoned cell must end quarantined (never silently
dropped), and innocent cells must still complete.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro

from repro.harness.parallel import (
    CellResult,
    SweepCell,
    build_matrix,
    checkpoint_path,
    matrix_to_json,
    run_cell,
    run_matrix,
)
from repro.harness.sweeps import sweep_cache_sizes
from repro.workloads import MICROBENCHMARKS

MATRIX_WORKLOADS = ["tp_small", "gauss_free"]
MATRIX_SIZES = (4, 32)
MATRIX_OPS = 250


def _smoke_cells():
    return build_matrix(MATRIX_WORKLOADS, cache_sizes=MATRIX_SIZES, num_ops=MATRIX_OPS)


def _fake_result(cell: SweepCell) -> CellResult:
    return CellResult(
        cell_id=cell.cell_id,
        workload=cell.workload,
        cache_entries=cell.cache_entries,
        num_ops=cell.num_ops,
        seed=cell.seed,
        summary={"malloc_improvement": 1.0},
    )


def _kill_worker_on_gauss(cell: SweepCell) -> CellResult:
    """Module-level (picklable) cell function that hard-kills the worker
    for one workload — simulating an OOM-kill/segfault mid-cell."""
    if cell.workload == "gauss_free":
        os._exit(17)
    return _fake_result(cell)


class TestSerialParallelIdentity:
    def test_sharded_matrix_is_byte_identical_to_serial(self):
        cells = _smoke_cells()
        serial = run_matrix(cells, jobs=1)
        sharded = run_matrix(cells, jobs=2)
        assert matrix_to_json(sharded) == matrix_to_json(serial)

    def test_resumed_run_is_byte_identical(self, tmp_path):
        """Kill-and-resume: complete the matrix, erase two checkpoints (as
        if the run died mid-flight), resume — completed cells are skipped,
        the payload is unchanged."""
        cells = _smoke_cells()
        first = run_matrix(cells, jobs=2, checkpoint_dir=tmp_path)
        for cell in cells[:2]:
            checkpoint_path(tmp_path, cell).unlink()
        resumed = run_matrix(cells, jobs=2, checkpoint_dir=tmp_path, resume=True)
        assert resumed.stats.cells_resumed == len(cells) - 2
        assert resumed.stats.cells_done == 2
        assert matrix_to_json(resumed) == matrix_to_json(first)

    def test_parallel_sweep_matches_serial_sweep(self, tmp_path):
        workload = MICROBENCHMARKS["tp_small"]
        serial = sweep_cache_sizes(workload, sizes=MATRIX_SIZES, num_ops=200, seed=5)
        sharded = sweep_cache_sizes(
            workload, sizes=MATRIX_SIZES, num_ops=200, seed=5,
            jobs=2, checkpoint_dir=tmp_path,
        )
        assert sharded.malloc_speedups == serial.malloc_speedups
        assert sharded.allocator_speedups == serial.allocator_speedups
        assert sharded.limit_speedup == serial.limit_speedup

    def test_macro_cells_immune_to_hash_randomization(self):
        """Macro workload streams used to be seeded via ``hash(name)``,
        which is per-process randomized — a resumed run in a fresh process
        would have recomputed cells on a *different* op stream. crc32
        seeding makes the same cell reproduce identically under any
        PYTHONHASHSEED."""
        cell = SweepCell(
            workload="400.perlbench", cache_entries=8, num_ops=150, seed=3
        )
        code = (
            "import json\n"
            "from repro.harness.parallel import SweepCell, run_cell\n"
            "r = run_cell(SweepCell(workload='400.perlbench',"
            " cache_entries=8, num_ops=150, seed=3))\n"
            "print(json.dumps(r.summary, sort_keys=True))\n"
        )
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        outs = set()
        for hashseed in ("0", "1", "271828"):
            env = {**os.environ, "PYTHONHASHSEED": hashseed, "PYTHONPATH": src_dir}
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            )
            outs.add(proc.stdout.strip())
        assert outs == {json.dumps(run_cell(cell).summary, sort_keys=True)}

    def test_single_cell_matches_direct_compare(self):
        """run_cell is just compare_workload on fresh machines — no hidden
        state leaks between cells in either direction."""
        cell = SweepCell(workload="tp_small", cache_entries=8, num_ops=150, seed=2)
        alone = run_cell(cell)
        in_matrix = run_matrix([cell], jobs=1).results[cell.cell_id]
        assert alone.summary == in_matrix.summary


class TestWorkerFaults:
    def test_killed_worker_quarantines_poison_and_completes_rest(self):
        cells = build_matrix(
            MATRIX_WORKLOADS, cache_sizes=MATRIX_SIZES, num_ops=MATRIX_OPS
        )
        # A broken pool can fail innocent queued cells alongside the poison;
        # retries must give them enough rounds to land on a healthy pool.
        result = run_matrix(
            cells, jobs=2, max_retries=3, backoff_seconds=0.0,
            cell_fn=_kill_worker_on_gauss,
        )
        poisoned = {c.cell_id for c in cells if c.workload == "gauss_free"}
        assert set(result.quarantined) == poisoned
        assert set(result.results) == {c.cell_id for c in cells} - poisoned
        assert result.stats.cells_quarantined == len(poisoned)

    def test_innocent_cells_survive_broken_pool_rounds(self, tmp_path):
        """Cells caught in a broken pool are retried on a fresh pool and
        checkpointed; a follow-up resume with the real cell function only
        recomputes the quarantined ones."""
        cells = _smoke_cells()
        crashed = run_matrix(
            cells, jobs=2, max_retries=3, backoff_seconds=0.0,
            cell_fn=_kill_worker_on_gauss, checkpoint_dir=tmp_path,
        )
        innocent = [c for c in cells if c.workload != "gauss_free"]
        assert {c.cell_id for c in innocent} <= set(crashed.results)

        healed = run_matrix(cells, jobs=2, checkpoint_dir=tmp_path, resume=True)
        assert healed.quarantined == {}
        assert healed.stats.cells_resumed == len(crashed.results)
        assert healed.stats.cells_done == len(cells) - len(crashed.results)

    def test_exception_in_worker_process_is_reported(self):
        def boom(cell):  # not picklable on purpose: jobs=1 path
            raise RuntimeError("boom")

        result = run_matrix(
            [_smoke_cells()[0]], jobs=1, max_retries=0, backoff_seconds=0.0,
            cell_fn=boom,
        )
        (error,) = result.quarantined.values()
        assert "RuntimeError" in error and "boom" in error

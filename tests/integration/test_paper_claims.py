"""End-to-end checks of the paper's headline claims.

Each test reproduces one quoted sentence from the paper at reduced scale.
These are the repository's acceptance tests: if one fails, some part of the
substrate drifted away from the published behaviour.
"""

import pytest

from repro.alloc import AllocatorConfig, TCMalloc
from repro.core import AreaModel, MallaccTCMalloc
from repro.harness.ablation import fastpath_breakdown
from repro.harness.experiments import compare_workload
from repro.harness.metrics import classes_for_coverage, mean_cycles
from repro.harness.runner import run_workload
from repro.harness.validation import mean_error, validate
from repro.workloads import MACRO_WORKLOADS, MICROBENCHMARKS

OPS = 2500


@pytest.fixture(scope="module")
def xapian():
    return compare_workload(MACRO_WORKLOADS["xapian.abstracts"], num_ops=OPS)


@pytest.fixture(scope="module")
def perlbench():
    return compare_workload(MACRO_WORKLOADS["400.perlbench"], num_ops=OPS)


class TestSection1Claims:
    def test_typical_malloc_call_20_cycles(self):
        """'a typical malloc call takes only 20 CPU cycles on a
        current-generation general-purpose processor'"""
        alloc = TCMalloc()
        result = run_workload(alloc, MICROBENCHMARKS["tp_small"].ops(num_ops=OPS))
        fast_mallocs = [r for r in result.records if r.is_malloc and r.is_fast_path]
        mean = sum(r.cycles for r in fast_mallocs) / len(fast_mallocs)
        assert 17 <= mean <= 30

    def test_malloc_latency_reduced_up_to_50_percent(self):
        """'malloc latency can be reduced by up to 50%'"""
        best = max(
            compare_workload(MICROBENCHMARKS[n], num_ops=OPS).malloc_improvement
            for n in ("tp", "tp_small", "sized_deletes")
        )
        assert 38 <= best <= 60

    def test_area_under_1500_um2(self):
        """'a hardware cost of less than 1500 um^2 of silicon area, less
        than 0.006% of a typical high-performance processor core'"""
        breakdown = AreaModel.breakdown(16)
        assert breakdown.total_um2 < 1500
        assert breakdown.fraction_of_haswell_core < 0.00006 * 1.05


class TestSection3Claims:
    def test_tp_small_average_18_cycles(self):
        """'our tp_small microbenchmark achieves an average malloc latency
        of only 18 cycles' (we land within a few cycles)"""
        alloc = TCMalloc()
        result = run_workload(alloc, MICROBENCHMARKS["tp_small"].ops(num_ops=OPS))
        mallocs = [r.cycles for r in result.records if r.is_malloc]
        assert 17 <= sum(mallocs) / len(mallocs) <= 26

    def test_thread_cache_miss_orders_of_magnitude(self):
        """'Missing in a thread cache has a cost at least three orders of
        magnitude higher than that of a hit' — our scaled slow paths keep
        two-plus orders."""
        alloc = TCMalloc()
        _, first = alloc.malloc(64)  # page allocator
        for _ in range(20):
            p, _ = alloc.malloc(64)
            alloc.sized_free(p, 64)
        _, hit = alloc.malloc(64)
        assert first.cycles >= 100 * hit.cycles

    def test_majority_of_time_below_100_cycles(self, perlbench):
        """Figure 2: 'more than 60% of time is spent on calls that take
        less than 100 cycles' for SPEC."""
        assert perlbench.baseline.fast_path_time_fraction(100) > 0.55

    def test_combined_components_half_of_fast_path(self):
        """Figure 4: the three components together ≈ 50% of fast-path
        cycles."""
        b = fastpath_breakdown(MICROBENCHMARKS["tp_small"], num_ops=OPS)
        assert 0.35 <= b.combined_fraction <= 0.65

    def test_workloads_use_few_size_classes(self, xapian):
        """Figure 6: 'all but one use less than 5 size classes on 90% of
        malloc calls'"""
        assert classes_for_coverage(xapian.baseline.records) <= 5


class TestSection6Claims:
    def test_xapian_gets_large_malloc_speedup(self, xapian):
        """'the malloc cache provides over 40% speedup on malloc calls'
        for xapian (we accept 30%+ at reduced scale)."""
        assert xapian.malloc_improvement >= 30

    def test_mallacc_bounded_by_limit_study(self, xapian, perlbench):
        for comparison in (xapian, perlbench):
            assert (
                comparison.allocator_improvement
                <= comparison.allocator_limit_improvement + 5
            )

    def test_masstree_lowest_speedup(self, xapian):
        """'masstree has the lowest overall malloc speedup of all the
        workloads we tested'"""
        masstree = compare_workload(MACRO_WORKLOADS["masstree.same"], num_ops=OPS)
        assert masstree.allocator_improvement < xapian.allocator_improvement

    def test_simulator_validation_error_single_digits(self):
        """Table 1: mean cycle error 6.28% (we require < 15%)."""
        assert mean_error(validate(num_ops=OPS)) < 15.0

    def test_mallacc_never_corrupts(self):
        """'these instructions are merely performance optimizations' — the
        accelerated allocator must be functionally invisible."""
        import random

        rng = random.Random(0)
        base = TCMalloc(config=AllocatorConfig(release_rate=0))
        accel = MallaccTCMalloc(config=AllocatorConfig(release_rate=0))
        live = []
        for _ in range(500):
            if live and rng.random() < 0.5:
                victim = live.pop(rng.randrange(len(live)))
                assert base.free(victim).kind == accel.free(victim).kind
            else:
                size = rng.choice([16, 64, 256])
                pb, _ = base.malloc(size)
                pa, _ = accel.malloc(size)
                assert pb == pa
                live.append(pb)
        accel.malloc_cache.check_invariants(accel.machine.memory)

    def test_pollack_rule_advantage(self):
        """'an area increase of 0.006% would only produce 0.003% speedup.
        In contrast, Mallacc demonstrates average speedup of 0.43%, which is
        over 140x greater.'"""
        assert AreaModel.pollack_advantage(0.0043, num_entries=16) > 140

"""Differential test: the traffic engine's degenerate case is the runner.

At 1 core, constant arrivals, and stream sessions (back-to-back chunks of
one continuous op stream), the scheduler collapses to sequential replay —
so every cycle the engine reports must be *bit-identical* to
:func:`repro.harness.runner.run_workload` on the same ops with the same
allocator.  This pins the refactor: ``dispatch_call`` and the traffic
scheduler execute the one true timing path, not a parallel reimplementation
that could drift.

A subprocess battery then holds the full engine (multicore, poisson
arrivals included) byte-identical across processes and ``PYTHONHASHSEED``
values — the repository-wide determinism contract.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.alloc.allocator import TCMalloc
from repro.core.accel_allocator import MallaccTCMalloc
from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.runner import run_workload
from repro.traffic import TrafficConfig, run_traffic
from repro.workloads import MACRO_WORKLOADS, MICROBENCHMARKS

ALL = {**MICROBENCHMARKS, **MACRO_WORKLOADS}
OPS = 480
SEED = 7


def _degenerate_config(workload: str) -> TrafficConfig:
    return TrafficConfig(
        workload=workload, arrival="constant", rps=50.0, duration_s=1.0,
        clock_hz=1_000_000.0, cores=1, ops_per_request=24, seed=SEED,
        session_mode="stream", total_ops=OPS,
    )


@pytest.mark.parametrize("name", ["xapian.abstracts", "gauss_free", "tp_small"])
def test_degenerate_engine_matches_run_workload_baseline(name):
    ops = list(ALL[name].ops(seed=SEED, num_ops=OPS))
    ref = run_workload(TCMalloc(), ops, name=name)
    res = run_traffic(_degenerate_config(name))
    assert res.call_cycles == [r.cycles for r in ref.records], (
        "per-call cycles must be bit-identical to the reference runner"
    )
    assert res.alloc_cycles == ref.allocator_cycles
    assert res.app_cycles == ref.app_cycles
    assert res.warmup_calls == ref.warmup_calls
    assert res.warmup_cycles == ref.warmup_cycles


def test_degenerate_engine_matches_run_workload_mallacc():
    name = "xapian.abstracts"
    ops = list(ALL[name].ops(seed=SEED, num_ops=OPS))
    ref = run_workload(
        MallaccTCMalloc(cache_config=MallocCacheConfig(num_entries=32)),
        ops, name=name,
    )
    res = run_traffic(_degenerate_config(name), accelerated=True,
                      cache_entries=32)
    assert res.call_cycles == [r.cycles for r in ref.records]
    assert res.alloc_cycles == ref.allocator_cycles
    assert res.app_cycles == ref.app_cycles
    assert res.warmup_cycles == ref.warmup_cycles


def test_degenerate_sessions_chunk_exactly():
    """The chunking itself must not perturb the stream: flattened stream
    sessions are the reference op list."""
    from repro.traffic.sessions import stream_sessions

    name = "xapian.abstracts"
    ops = list(ALL[name].ops(seed=SEED, num_ops=OPS))
    sessions = stream_sessions(ALL[name], OPS, 24, seed=SEED)
    assert [op for s in sessions for op in s.ops] == ops


_HASHSEED_SCRIPT = r"""
import json
from repro.traffic import TrafficConfig, run_traffic

# degenerate single-core stream mode
deg = run_traffic(TrafficConfig(
    workload="xapian.abstracts", arrival="constant", rps=50.0,
    duration_s=1.0, cores=1, ops_per_request=24, seed=7,
    session_mode="stream", total_ops=480,
))
# the full engine: multicore, poisson arrivals, independent sessions
full = run_traffic(TrafficConfig(
    workload="xapian.abstracts", arrival="poisson", rps=120.0,
    duration_s=0.5, cores=4, ops_per_request=24, seed=7,
))
print(json.dumps({
    "deg_call_cycles": deg.call_cycles,
    "deg_alloc": deg.alloc_cycles,
    "deg_app": deg.app_cycles,
    "full_alloc": full.alloc_cycles,
    "full_hist": full.alloc_hist.to_dict(),
    "full_sojourn": full.sojourn_hist.to_dict(),
    "full_completions": [r.completion for r in full.requests],
    "full_cores": [r.core for r in full.requests],
}, sort_keys=True))
"""


def test_engine_byte_identical_across_hash_seeds():
    outputs = []
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    for seed in ("0", "1", "401"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            capture_output=True, text=True, env=env, cwd=repo_root,
            timeout=240,
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1] == outputs[2], (
        "traffic engine output varies with PYTHONHASHSEED"
    )
    payload = json.loads(outputs[0])
    assert payload["deg_alloc"] == sum(payload["deg_call_cycles"])
    assert len(set(payload["full_cores"])) > 1

"""Cross-product smoke matrix: every workload on every allocator variant.

Cheap per cell, but the matrix catches integration regressions nothing else
exercises (e.g. a macro workload hitting a Mallacc corner only under a
specific free mix).
"""

import pytest

from repro.alloc import AllocatorConfig, TCMalloc
from repro.core import MallaccTCMalloc
from repro.core.malloc_cache import MallocCacheConfig
from repro.harness.runner import run_workload
from repro.workloads import MACRO_WORKLOADS, MICROBENCHMARKS
from repro.workloads.adversarial import class_thrash, fragmentation_bomb, prefetch_trap

ALL_WORKLOADS = {
    **MICROBENCHMARKS,
    **MACRO_WORKLOADS,
    "class_thrash": class_thrash(24),
    "prefetch_trap": prefetch_trap(),
    "fragmentation_bomb": fragmentation_bomb(population=64),
}

VARIANTS = {
    "baseline": lambda: TCMalloc(config=AllocatorConfig(release_rate=0)),
    "mallacc32": lambda: MallaccTCMalloc(config=AllocatorConfig(release_rate=0)),
    "mallacc4": lambda: MallaccTCMalloc(
        config=AllocatorConfig(release_rate=0),
        cache_config=MallocCacheConfig(num_entries=4),
    ),
    "mallacc-paper-fill": lambda: MallaccTCMalloc(
        config=AllocatorConfig(release_rate=0),
        cache_config=MallocCacheConfig(fill_rule="paper"),
    ),
}


@pytest.mark.parametrize("workload_name", sorted(ALL_WORKLOADS))
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_matrix(workload_name, variant):
    workload = ALL_WORKLOADS[workload_name]
    allocator = VARIANTS[variant]()
    result = run_workload(
        allocator, workload.ops(seed=11, num_ops=300), name=workload.name,
        model_app_traffic=False,
    )
    assert result.records, (workload_name, variant)
    assert all(r.cycles > 0 for r in result.records)
    allocator.check_conservation()
    if hasattr(allocator, "malloc_cache"):
        allocator.malloc_cache.check_invariants(allocator.machine.memory)

"""Every example must run cleanly — they are the public face of the API."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    # Examples size themselves for interactive use; shrink the heavy knobs.
    monkeypatch.setenv("REPRO_BENCH_OPS", "400")
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report, not a stub


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "search_engine_workload",
        "cache_sizing",
        "allocator_anatomy",
        "cache_antagonist",
        "multithreaded_service",
        "allocator_zoo",
    } <= names

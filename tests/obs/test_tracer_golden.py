"""Golden-file test for the Perfetto (Chrome trace-event) export.

A fixed 200-op workload is traced end to end and the exported payload is
held to the schema: required keys on every event, balanced B/E pairs,
per-track monotonic timestamps — and the *structure* (event names, phase
sequence, argument keys) must be byte-stable across ``PYTHONHASHSEED``
values, since the trace file is a comparison artifact."""

import json
import os
import subprocess
import sys

from repro.harness.experiments import compare_workload, make_baseline
from repro.harness.runner import run_workload, run_workload_sampled
from repro.obs.tracer import iter_spans, tracing, validate_chrome_trace
from repro.sim.sampling import SamplingConfig
from repro.workloads import MICROBENCHMARKS

GOLDEN_WORKLOAD = "tp_small"
GOLDEN_OPS = 200
GOLDEN_SEED = 7


def _traced_comparison():
    with tracing() as tracer:
        compare_workload(
            MICROBENCHMARKS[GOLDEN_WORKLOAD], num_ops=GOLDEN_OPS, seed=GOLDEN_SEED
        )
        return tracer.to_chrome_trace(
            metadata={"workload": GOLDEN_WORKLOAD, "ops": GOLDEN_OPS}
        )


def _structure(payload):
    """The hashseed-stable skeleton of a trace: everything but timestamps."""
    return [
        (ev["name"], ev["ph"], sorted(ev.get("args", {})))
        for ev in payload["traceEvents"]
    ]


class TestGoldenExport:
    def test_schema_valid_and_balanced(self):
        payload = _traced_comparison()
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        for ev in events:
            for key in ("ph", "ts", "pid", "tid", "name", "cat"):
                assert key in ev, f"event missing {key}: {ev}"
        phases = [e["ph"] for e in events]
        assert phases.count("B") == phases.count("E")

    def test_golden_structure(self):
        # compare_workload replays the workload twice (baseline, then
        # mallacc); each replay is exactly one run_workload span.
        payload = _traced_comparison()
        assert _structure(payload) == [
            ("run_workload", "B", ["calls", "workload"]),
            ("run_workload", "E", []),
            ("run_workload", "B", ["calls", "workload"]),
            ("run_workload", "E", []),
        ]
        begins = [e for e in payload["traceEvents"] if e["ph"] == "B"]
        for ev in begins:
            assert ev["args"]["workload"] == GOLDEN_WORKLOAD
            # records exclude any warmup prefix, so calls <= the op budget
            assert 0 < ev["args"]["calls"] <= GOLDEN_OPS

    def test_timestamps_monotonic_and_spans_ordered(self):
        payload = _traced_comparison()
        ts = [e["ts"] for e in payload["traceEvents"]]
        assert ts == sorted(ts)  # single pid/tid here: globally monotonic

    def test_sampled_run_span(self):
        wl = MICROBENCHMARKS[GOLDEN_WORKLOAD]
        with tracing() as tracer:
            run_workload_sampled(
                make_baseline,
                wl.ops(seed=GOLDEN_SEED, num_ops=600),
                config=SamplingConfig(interval_ops=100, stride=4),
            )
            spans = iter_spans(tracer.events(), "run_workload_sampled")
            payload = tracer.to_chrome_trace()
        assert len(spans) == 1
        assert dict(spans[0].args)["rounds"] >= 1
        assert validate_chrome_trace(payload) == []

    def test_plain_run_span_args(self):
        wl = MICROBENCHMARKS[GOLDEN_WORKLOAD]
        with tracing() as tracer:
            result = run_workload(
                make_baseline(), wl.ops(seed=GOLDEN_SEED, num_ops=GOLDEN_OPS)
            )
            (span,) = iter_spans(tracer.events(), "run_workload")
        assert dict(span.args)["calls"] == len(result.records)


_HASHSEED_SCRIPT = r"""
import json, sys
from repro.harness.experiments import make_baseline
from repro.harness.runner import run_workload
from repro.obs.bridges import run_registry
from repro.obs.manifest import config_fingerprint
from repro.obs.tracer import tracing
from repro.workloads import MICROBENCHMARKS

with tracing() as tracer:
    result = run_workload(
        make_baseline(), MICROBENCHMARKS["tp_small"].ops(seed=7, num_ops=200)
    )
    payload = tracer.to_chrome_trace(metadata={"workload": "tp_small"})
structure = [
    (ev["name"], ev["ph"], sorted(ev.get("args", {})))
    for ev in payload["traceEvents"]
]
print(json.dumps({
    "structure": structure,
    "fingerprint": config_fingerprint({"b": [1, 2], "a": {"z": 1, "y": 2}}),
    "metrics": run_registry(result).to_json(),
    "total_cycles": result.total_cycles,
}, sort_keys=True))
"""


class TestHashSeedStability:
    def test_structure_stable_across_hash_seeds(self):
        outputs = []
        for seed in ("0", "1", "401"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", _HASHSEED_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
                timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1] == outputs[2]
        decoded = json.loads(outputs[0])
        assert decoded["structure"][0][0] == "run_workload"

"""Unit tests for the span tracer: ring bounds, disabled cost model,
Chrome-trace export shape, and the schema validator itself."""

import json

import pytest

from repro.obs.tracer import (
    Tracer,
    _NULL_SPAN,
    get_tracer,
    iter_spans,
    set_tracer,
    tracing,
    validate_chrome_trace,
)


class TestTracerCore:
    def test_disabled_span_is_shared_noop(self):
        t = Tracer(enabled=False)
        assert t.span("x") is _NULL_SPAN
        assert t.span("y", key="v") is _NULL_SPAN
        with t.span("x"):
            pass
        t.instant("i")
        t.counter("c", 1.0)
        assert len(t) == 0

    def test_span_records_on_exit(self):
        t = Tracer()
        with t.span("outer", workload="tp"):
            with t.span("inner"):
                pass
        events = t.events()
        assert [e.name for e in events] == ["inner", "outer"]
        outer = iter_spans(events, "outer")[0]
        inner = iter_spans(events, "inner")[0]
        assert outer.depth == 0 and inner.depth == 1
        assert outer.dur_us >= 1 and inner.dur_us >= 1
        assert outer.args == (("workload", "tp"),)

    def test_ring_bounds_and_dropped_counter(self):
        t = Tracer(capacity=4)
        for i in range(10):
            with t.span(f"s{i}"):
                pass
        assert len(t) == 4
        assert t.dropped == 6
        assert [e.name for e in t.events()] == ["s6", "s7", "s8", "s9"]

    def test_instant_and_counter_kinds(self):
        t = Tracer()
        t.instant("hit", cl=3)
        t.counter("live_bytes", 128.0)
        kinds = {e.name: e.kind for e in t.events()}
        assert kinds == {"hit": "instant", "live_bytes": "counter"}
        assert all(e.dur_us == 0 for e in t.events())

    def test_complete_records_explicit_endpoints(self):
        t = Tracer()
        t.complete("cell", ts_us=100, dur_us=50, cell="tp:4", tid=7)
        (e,) = t.events()
        assert (e.ts_us, e.dur_us, e.tid) == (100, 50, 7)
        assert e.args == (("cell", "tp:4"),)

    def test_clear_resets_ring_and_dropped(self):
        t = Tracer(capacity=1)
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        assert t.dropped == 1
        t.clear()
        assert len(t) == 0 and t.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestGlobalTracer:
    def test_tracing_scope_swaps_and_restores(self):
        before = get_tracer()
        with tracing() as t:
            assert get_tracer() is t
            assert t.enabled
        assert get_tracer() is before

    def test_set_tracer_returns_previous(self):
        fresh = Tracer(enabled=False)
        prev = set_tracer(fresh)
        try:
            assert get_tracer() is fresh
        finally:
            set_tracer(prev)


class TestChromeExport:
    def test_spans_export_balanced_pairs(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        t.instant("mark")
        t.counter("c", 2.0)
        payload = t.to_chrome_trace(metadata={"workload": "tp"})
        events = payload["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases.count("B") == phases.count("E") == 2
        assert phases.count("i") == phases.count("C") == 1
        assert payload["metadata"] == {"workload": "tp"}
        assert validate_chrome_trace(payload) == []

    def test_export_writes_loadable_json(self, tmp_path):
        t = Tracer()
        with t.span("s"):
            pass
        path = tmp_path / "trace.json"
        count = t.export_chrome_trace(path, metadata={"k": "v"})
        assert count == 2
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["metadata"]["k"] == "v"

    def test_dropped_spans_surface_in_metadata(self):
        t = Tracer(capacity=1)
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        payload = t.to_chrome_trace()
        assert payload["metadata"]["dropped_spans"] == 1
        # Eviction keeps the export balanced: the evicted span vanishes
        # entirely rather than leaving a dangling B or E.
        assert validate_chrome_trace(payload) == []


class TestValidator:
    def test_flags_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]

    def test_flags_missing_keys_and_unknown_phase(self):
        payload = {"traceEvents": [{"ph": "Z", "ts": 0, "pid": 1, "tid": 1, "name": "x"},
                                   {"ph": "i", "ts": 0, "pid": 1, "tid": 1}]}
        problems = validate_chrome_trace(payload)
        assert any("unknown ph" in p for p in problems)
        assert any("missing 'name'" in p for p in problems)

    def test_flags_unbalanced_and_nonmonotonic(self):
        base = {"pid": 1, "tid": 1, "name": "x"}
        payload = {"traceEvents": [
            {**base, "ph": "B", "ts": 10},
            {**base, "ph": "i", "ts": 5},  # goes backwards
        ]}
        problems = validate_chrome_trace(payload)
        assert any("not monotonic" in p for p in problems)
        assert any("left open" in p for p in problems)

    def test_flags_close_without_open(self):
        payload = {"traceEvents": [{"ph": "E", "ts": 1, "pid": 1, "tid": 1, "name": "x"}]}
        assert any("no open B" in p for p in validate_chrome_trace(payload))

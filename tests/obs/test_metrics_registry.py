"""MetricsRegistry unit + property tests.

The load-bearing property is merge order-independence: the parallel matrix
pool merges worker registries in *completion* order, which varies run to
run, so any merge order must equal the serial registry.  Hypothesis drives
random op streams through registries; the integration half replays the
differential-matrix configuration and checks jobs=2 pooled metrics against
jobs=1 byte for byte."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.parallel import build_matrix, run_matrix
from repro.obs.metrics import (
    DEFAULT_CYCLE_BUCKETS,
    Histogram,
    MetricsRegistry,
    render_series,
)

# -- strategies ------------------------------------------------------------
NAMES = ("hits", "misses", "live", "latency")
LABELS = st.fixed_dictionaries({}, optional={"alloc": st.sampled_from(["a", "b"]),
                                             "cl": st.sampled_from(["1", "2"])})

# Counter/histogram values are integer-valued (call counts, cycle totals),
# which keeps float sums exact under any grouping: the merge-order
# properties below are *bit*-equality claims, and IEEE addition is only
# associative on integers small enough to be exact.  Gauges merge by max,
# which is exact for any float, so they get the full range.
int_valued = st.integers(min_value=0, max_value=10**9).map(float)
counter_op = st.tuples(st.just("counter"), st.sampled_from(NAMES[:2]), LABELS,
                       int_valued)
gauge_op = st.tuples(st.just("gauge"), st.just(NAMES[2]), LABELS,
                     st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
hist_op = st.tuples(st.just("histogram"), st.just(NAMES[3]), LABELS,
                    int_valued)
ops_stream = st.lists(st.one_of(counter_op, gauge_op, hist_op), max_size=30)


def apply_ops(ops) -> MetricsRegistry:
    reg = MetricsRegistry()
    for kind, name, labels, value in ops:
        if kind == "counter":
            reg.counter(name, **labels).inc(value)
        elif kind == "gauge":
            reg.gauge(name, **labels).set(value)
        else:
            reg.histogram(name, **labels).observe(value)
    return reg


class TestRegistryCore:
    def test_counter_labels_and_total(self):
        reg = MetricsRegistry()
        reg.counter("hits", alloc="baseline").inc(3)
        reg.counter("hits", alloc="mallacc").inc(4)
        assert reg.value("hits", alloc="baseline") == 3
        assert reg.total("hits") == 7
        assert len(reg.series("hits")) == 2

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_histogram_buckets(self):
        h = Histogram(bounds=(10.0, 100.0))
        for v in (5, 50, 500, 7):
            h.observe(v)
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.mean == pytest.approx((5 + 50 + 500 + 7) / 4)

    def test_histogram_bounds_must_be_sorted_distinct(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(10.0, 10.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(100.0, 10.0))

    def test_histogram_merge_rejects_different_bounds(self):
        reg_a = MetricsRegistry()
        reg_a.histogram("h", buckets=(1.0, 2.0)).observe(1)
        reg_b = MetricsRegistry()
        reg_b.histogram("h", buckets=(1.0, 3.0)).observe(1)
        with pytest.raises(ValueError, match="different bounds"):
            reg_a.merge(reg_b)

    def test_gauge_merges_by_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(3)
        b.gauge("g").set(9)
        assert MetricsRegistry.merged([a, b]).value("g") == 9
        assert MetricsRegistry.merged([b, a]).value("g") == 9

    def test_merge_copies_do_not_alias_sources(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(5)
        merged = a.merge(b)
        merged.counter("c").inc(10)
        assert b.value("c") == 5

    def test_render_series_canonical(self):
        assert render_series("hits", ()) == "hits"
        assert render_series("hits", (("a", "1"), ("b", "2"))) == "hits{a=1,b=2}"

    def test_default_buckets_match_paper_decades(self):
        assert DEFAULT_CYCLE_BUCKETS == (20.0, 50.0, 100.0, 1000.0, 10000.0, 100000.0)


class TestSerialization:
    def test_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("hits", alloc="a").inc(3)
        reg.gauge("live").set(-2.5)
        reg.histogram("lat", buckets=(1.0, 10.0)).observe(4)
        back = MetricsRegistry.from_dict(json.loads(reg.to_json()))
        assert back == reg
        assert back.to_json() == reg.to_json()

    def test_to_dict_is_insertion_order_free(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(1)
        a.counter("y", k="v").inc(2)
        b.counter("y", k="v").inc(2)
        b.counter("x").inc(1)
        assert a.to_json() == b.to_json()


class TestMergeProperties:
    @settings(max_examples=100, deadline=None)
    @given(ops_stream, ops_stream)
    def test_merge_commutative(self, ops_a, ops_b):
        a, b = apply_ops(ops_a), apply_ops(ops_b)
        assert MetricsRegistry.merged([a, b]) == MetricsRegistry.merged([b, a])

    @settings(max_examples=100, deadline=None)
    @given(ops_stream, ops_stream, ops_stream)
    def test_merge_associative(self, ops_a, ops_b, ops_c):
        regs = lambda: [apply_ops(o) for o in (ops_a, ops_b, ops_c)]
        a, b, c = regs()
        left = MetricsRegistry.merged([MetricsRegistry.merged([a, b]), c])
        a, b, c = regs()
        right = MetricsRegistry.merged([a, MetricsRegistry.merged([b, c])])
        assert left == right

    @settings(max_examples=50, deadline=None)
    @given(ops_stream)
    def test_empty_registry_is_identity(self, ops):
        reg = apply_ops(ops)
        assert MetricsRegistry.merged([MetricsRegistry(), reg]) == reg
        assert MetricsRegistry.merged([reg, MetricsRegistry()]) == reg

    @settings(max_examples=50, deadline=None)
    @given(st.lists(ops_stream, min_size=1, max_size=5))
    def test_n_way_merge_equals_single_stream(self, streams):
        """Sharding one op stream across N registries then merging gives
        the same result as one registry seeing every op (counters and
        histograms; gauges excluded — max is not a sum)."""
        summing = [
            [op for op in stream if op[0] != "gauge"] for stream in streams
        ]
        shards = [apply_ops(stream) for stream in summing]
        serial = apply_ops([op for stream in summing for op in stream])
        assert MetricsRegistry.merged(shards) == serial


class TestMatrixPoolMerge:
    """jobs=2 pooled metrics == jobs=1 pooled metrics on the differential
    matrix configuration (tests/integration/test_parallel_differential.py)."""

    def test_parallel_pool_equals_serial(self):
        cells = build_matrix(["tp_small", "gauss_free"], cache_sizes=(4,), num_ops=200)
        serial = run_matrix(cells, jobs=1)
        sharded = run_matrix(cells, jobs=2)
        assert serial.stats.metrics == sharded.stats.metrics
        assert json.dumps(serial.stats.metrics, sort_keys=True) == json.dumps(
            sharded.stats.metrics, sort_keys=True
        )

    def test_cell_merge_is_order_free(self):
        cells = build_matrix(["tp_small"], cache_sizes=(4, 32), num_ops=200)
        stats = run_matrix(cells, jobs=1)
        regs = [
            MetricsRegistry.from_dict(r.metrics)
            for r in stats.results.values()
            if r.metrics
        ]
        assert len(regs) == 2
        forward = MetricsRegistry.merged(regs)
        backward = MetricsRegistry.merged(list(reversed(regs)))
        assert forward == backward
        assert forward.total("calls") == sum(r.total("calls") for r in regs)


class TestWarmBridge:
    """warm_registry lifts MatrixStats.warm without touching cell metrics."""

    def test_warm_registry_series(self):
        from repro.obs.bridges import warm_registry

        warm = {"schedules": 83, "templates": 16, "streams": 2,
                "schedule_hits": 210, "template_hits": 52, "stream_hits": 4}
        reg = warm_registry(warm, jobs="4")
        assert reg.total("warm_schedule_hits") == 210.0
        assert reg.total("warm_stream_hits") == 4.0
        assert reg.gauge("warm_schedules", jobs="4").value == 83.0

    def test_warm_telemetry_stays_out_of_pooled_cell_metrics(self):
        """The pooled per-cell registry is byte-compared serial vs sharded;
        a prewarmed jobs=2 run must therefore expose no warm_* series in
        stats.metrics even though stats.warm is populated."""
        cells = build_matrix(["tp_small"], cache_sizes=(4, 32), num_ops=200)
        sharded = run_matrix(cells, jobs=2)
        assert sharded.stats.warm["schedules"] > 0
        assert "warm_" not in json.dumps(sharded.stats.metrics)

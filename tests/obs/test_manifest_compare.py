"""Run manifests (provenance) and the compare-based regression differ,
including the ``repro report --compare`` CLI exit-code contract: exit 0 on
identical runs, nonzero on an injected regression."""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.obs.compare import (
    DEFAULT_IGNORE,
    compare_payloads,
    flatten,
    load_payload,
    render_deltas,
)
from repro.obs.manifest import (
    ENV_KNOBS,
    RunManifest,
    collect_manifest,
    config_fingerprint,
)


class TestConfigFingerprint:
    def test_insertion_order_free(self):
        a = config_fingerprint({"x": 1, "y": [1, 2], "z": {"k": "v"}})
        b = config_fingerprint({"z": {"k": "v"}, "y": [1, 2], "x": 1})
        assert a == b
        assert len(a) == 16

    def test_value_sensitive(self):
        assert config_fingerprint({"ops": 100}) != config_fingerprint({"ops": 101})

    def test_non_json_values_stringified(self):
        # default=str: exotic values fingerprint rather than crash
        config_fingerprint({"path": object()})


class TestManifest:
    def test_collect_captures_env_knobs(self, monkeypatch):
        for knob in ENV_KNOBS:
            monkeypatch.delenv(knob, raising=False)
        monkeypatch.setenv("REPRO_TRACE_INTERN", "0")
        m = collect_manifest({"entry": "test"}, seed=9, alloc="baseline")
        assert m.env == (("REPRO_TRACE_INTERN", "0"),)
        assert m.seed == 9
        assert dict(m.extra)["alloc"] == "baseline"
        assert dict(m.config)["entry"] == '"test"'
        assert m.config_hash == config_fingerprint({"entry": "test"})

    def test_frozen(self):
        m = collect_manifest()
        with pytest.raises(dataclasses.FrozenInstanceError):
            m.seed = 3

    def test_finished_fills_wall_seconds(self):
        m = collect_manifest()
        done = m.finished(1.5)
        assert done.wall_seconds == 1.5
        assert m.wall_seconds == 0.0  # original untouched
        assert done.config_hash == m.config_hash

    def test_roundtrip(self):
        m = collect_manifest({"ops": 10}, seed=2, alloc="mallacc").finished(0.25)
        back = RunManifest.from_dict(json.loads(m.to_json()))
        assert back == m

    def test_from_dict_ignores_unknown_keys(self):
        m = collect_manifest()
        payload = m.to_dict()
        payload["future_field"] = "whatever"
        assert RunManifest.from_dict(payload) == m

    def test_describe_one_line(self):
        m = collect_manifest({"ops": 10}, seed=2)
        text = m.describe()
        assert "\n" not in text
        assert m.config_hash in text
        assert "seed=2" in text


class TestComparePayloads:
    def test_identical_payloads_match(self):
        payload = {"summary": {"speedup": 1.23, "cycles": 400}, "name": "tp"}
        assert compare_payloads(payload, dict(payload)) == []
        assert "OK" in render_deltas([])

    def test_numeric_change_flagged_with_relative_delta(self):
        a = {"cycles": 100.0}
        b = {"cycles": 110.0}
        (delta,) = compare_payloads(a, b)
        assert delta.path == "cycles"
        assert delta.rel_delta == pytest.approx(10.0 / 110.0)
        assert delta.reason == "changed"

    def test_threshold_suppresses_small_deltas(self):
        a, b = {"cycles": 100.0}, {"cycles": 104.0}
        assert compare_payloads(a, b, threshold=0.05) == []
        assert len(compare_payloads(a, b, threshold=0.01)) == 1

    def test_bool_change_flagged_even_with_threshold(self):
        # bools are not numbers here: True -> False is categorical
        deltas = compare_payloads({"ok": True}, {"ok": False}, threshold=0.5)
        assert len(deltas) == 1
        assert deltas[0].rel_delta == float("inf")

    def test_missing_keys_flagged(self):
        deltas = compare_payloads({"a": 1, "b": 2}, {"a": 1, "c": 3})
        reasons = {d.path: d.reason for d in deltas}
        assert reasons == {"b": "missing_in_b", "c": "missing_in_a"}

    def test_wall_time_and_manifest_ignored_by_default(self):
        a = {"summary": {"x": 1}, "manifest": {"git_sha": "aaa"},
             "wall_seconds": 1.0, "started_at": 5.0}
        b = {"summary": {"x": 1}, "manifest": {"git_sha": "bbb"},
             "wall_seconds": 9.0, "started_at": 6.0}
        assert compare_payloads(a, b) == []
        assert compare_payloads(a, b, ignore=()) != []

    def test_custom_ignore_patterns(self):
        a, b = {"noise": {"x": 1}, "signal": 5}, {"noise": {"x": 2}, "signal": 5}
        assert compare_payloads(a, b, ignore=DEFAULT_IGNORE + ("noise.*",)) == []

    def test_flatten_paths(self):
        flat = flatten({"rows": [{"cy": 1}, {"cy": 2}], "n": "tp"})
        assert flat == {"rows.0.cy": 1, "rows.1.cy": 2, "n": "tp"}

    def test_render_limits_output(self):
        deltas = compare_payloads({str(i): i for i in range(60)}, {})
        text = render_deltas(deltas, limit=5)
        assert "FLAGGED: 60 delta(s)" in text
        assert "... and 55 more" in text

    def test_load_payload_rejects_non_object(self, tmp_path):
        path = tmp_path / "arr.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="expected a JSON object"):
            load_payload(path)


class TestCompareCLI:
    """The acceptance contract: ``repro report --compare`` exits 0 on two
    identical runs and nonzero on an injected regression."""

    def _run_payload(self, tmp_path, name, **overrides):
        path = tmp_path / f"{name}.json"
        argv = ["run", "tp_small", "--ops", "150", "--seed", "3",
                "--json", str(path)]
        main(argv)
        payload = load_payload(path)
        if overrides:
            payload["summary"].update(overrides)
            path.write_text(json.dumps(payload))
        return path

    def test_identical_runs_exit_zero(self, tmp_path, capsys):
        a = self._run_payload(tmp_path, "a")
        b = self._run_payload(tmp_path, "b")
        main(["report", "--compare", str(a), str(b)])  # no SystemExit
        assert "OK: payloads match" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        a = self._run_payload(tmp_path, "a")
        bad = self._run_payload(tmp_path, "bad", program_speedup=0.0)
        with pytest.raises(SystemExit) as exc:
            main(["report", "--compare", str(a), str(bad)])
        assert exc.value.code == 1
        assert "FLAGGED" in capsys.readouterr().out

    def test_threshold_flag_waives_small_drift(self, tmp_path, capsys):
        a = self._run_payload(tmp_path, "a")
        payload = load_payload(a)
        drifted = dict(payload)
        drifted["summary"] = dict(payload["summary"])
        for key, value in payload["summary"].items():
            if isinstance(value, float) and value:
                drifted["summary"][key] = value * 1.0001
        b = tmp_path / "drift.json"
        b.write_text(json.dumps(drifted))
        main(["report", "--compare", str(a), str(b), "--threshold", "0.01"])
        assert "OK: payloads match" in capsys.readouterr().out

"""Observability must be free of observer effects: simulation results are
byte-identical whether tracing/metrics/manifest collection is on or off.

Everything here compares *result* payloads (records, summaries, figure
data) — never wall times or manifests, which legitimately differ."""

import json
import os
import subprocess
import sys

from repro.harness.experiments import (
    compare_workload,
    compare_workload_sampled,
    make_baseline,
    summarize_comparison,
    summarize_sampled_comparison,
)
from repro.harness.runner import run_workload
from repro.obs.tracer import Tracer, set_tracer, tracing
from repro.sim.sampling import SamplingConfig
from repro.workloads import MICROBENCHMARKS

WORKLOAD = "tp_small"
OPS = 200
SEED = 11


class TestTracingIdentity:
    def test_run_records_identical_with_tracing(self):
        wl = MICROBENCHMARKS[WORKLOAD]
        off = run_workload(make_baseline(), wl.ops(seed=SEED, num_ops=OPS))
        with tracing():
            on = run_workload(make_baseline(), wl.ops(seed=SEED, num_ops=OPS))
        assert on.records == off.records
        assert on.total_cycles == off.total_cycles
        assert on.app_cycles == off.app_cycles

    def test_comparison_summary_identical_with_tracing(self):
        wl = MICROBENCHMARKS[WORKLOAD]
        off = summarize_comparison(compare_workload(wl, num_ops=OPS, seed=SEED))
        with tracing():
            on = summarize_comparison(compare_workload(wl, num_ops=OPS, seed=SEED))
        assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True)

    def test_sampled_summary_identical_with_tracing(self):
        wl = MICROBENCHMARKS[WORKLOAD]
        cfg = SamplingConfig(interval_ops=100, stride=4)
        off = summarize_sampled_comparison(
            compare_workload_sampled(wl, num_ops=600, seed=SEED, sampling=cfg)
        )
        with tracing():
            on = summarize_sampled_comparison(
                compare_workload_sampled(wl, num_ops=600, seed=SEED, sampling=cfg)
            )
        assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True)

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        previous = set_tracer(tracer)
        try:
            run_workload(
                make_baseline(),
                MICROBENCHMARKS[WORKLOAD].ops(seed=SEED, num_ops=50),
            )
        finally:
            set_tracer(previous)
        assert len(tracer) == 0


class TestResultPayloadsExcludeObservability:
    def test_manifest_not_in_summary(self):
        c = compare_workload(MICROBENCHMARKS[WORKLOAD], num_ops=OPS, seed=SEED)
        assert c.baseline.manifest is not None
        summary = summarize_comparison(c)
        assert "manifest" not in json.dumps(summary)

    def test_manifest_excluded_from_result_equality(self):
        wl = MICROBENCHMARKS[WORKLOAD]
        a = run_workload(make_baseline(), wl.ops(seed=SEED, num_ops=50))
        b = run_workload(make_baseline(), wl.ops(seed=SEED, num_ops=50))
        # Different wall clocks -> different manifests, but the results
        # compare equal: manifests are provenance, not results.
        assert a.manifest != b.manifest or a.manifest is None
        assert a == b


_ENV_FLAG_SCRIPT = r"""
import json
from repro.harness.experiments import compare_workload, summarize_comparison
from repro.workloads import MICROBENCHMARKS

c = compare_workload(MICROBENCHMARKS["tp_small"], num_ops=200, seed=11)
print(json.dumps(summarize_comparison(c), sort_keys=True))
"""


class TestEnvFlagIdentity:
    def test_repro_obs_trace_env_flag_does_not_change_results(self):
        outputs = []
        for flag in ("0", "1"):
            env = dict(os.environ, REPRO_OBS_TRACE=flag)
            env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", _ENV_FLAG_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
                timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1]

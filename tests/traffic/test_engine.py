"""Unit tests for the traffic engine: scheduler, sampling, comparisons."""

import pytest

from repro.obs.bridges import traffic_registry
from repro.traffic import (
    TrafficConfig,
    build_load_matrix,
    build_sessions,
    compare_traffic,
    estimate_capacity_rps,
    independent_sessions,
    run_traffic,
    run_traffic_cell,
    stream_sessions,
)
from repro.workloads import MACRO_WORKLOADS

CFG = TrafficConfig(
    workload="xapian.abstracts", arrival="poisson", rps=120.0,
    duration_s=0.6, cores=4, ops_per_request=24, seed=7,
)


def test_deterministic_replay():
    a = run_traffic(CFG)
    b = run_traffic(CFG)
    assert a.alloc_hist == b.alloc_hist
    assert a.call_cycles == b.call_cycles
    assert [r.completion for r in a.requests] == [r.completion for r in b.requests]
    assert a.alloc_cycles == b.alloc_cycles


def test_conservation_and_accounting():
    res = run_traffic(CFG)
    res.check_conservation()  # engine already ran it; idempotent
    sessions, arrivals = build_sessions(CFG)
    assert res.completed == len(sessions) == len(arrivals)
    assert res.warmup_requests == sum(1 for s in sessions if s.warmup)
    assert res.detailed_requests == res.measured_requests
    assert res.skipped_requests == 0
    assert res.alloc_hist.count == res.measured_requests
    # per-request alloc cycles sum to the measured total
    measured = [r for r in res.requests if not r.warmup]
    assert sum(r.alloc_cycles for r in measured) == res.alloc_cycles
    assert sum(r.calls for r in measured) == res.calls


def test_requests_never_start_before_arrival():
    res = run_traffic(CFG)
    for r in res.requests:
        assert r.start >= r.arrival
        assert r.completion >= r.start
        assert r.queue_wait >= 0
        assert r.sojourn >= r.alloc_cycles or not r.detailed


def test_multicore_spreads_requests():
    res = run_traffic(CFG)
    cores_used = {r.core for r in res.requests}
    assert len(cores_used) > 1, "4-core run should not serialize on one core"


def test_overload_grows_queueing_delay():
    """The open-loop property: past saturation, sojourn decouples from
    service time because queues grow without bound."""
    cap = estimate_capacity_rps(CFG)
    light = run_traffic(
        TrafficConfig(workload=CFG.workload, arrival="poisson",
                      rps=0.3 * cap, duration_s=0.6, cores=CFG.cores, seed=7))
    heavy = run_traffic(
        TrafficConfig(workload=CFG.workload, arrival="poisson",
                      rps=2.0 * cap, duration_s=0.6, cores=CFG.cores, seed=7))
    assert heavy.sojourn_hist.p95 > 3 * light.sojourn_hist.p95
    assert heavy.throughput_rps < heavy.offered_rps * 0.9


def test_mallacc_reduces_measured_alloc_cycles():
    comparison = compare_traffic(CFG)
    assert comparison.mallacc.alloc_cycles < comparison.baseline.alloc_cycles
    assert comparison.mallacc.alloc_hist.mean < comparison.baseline.alloc_hist.mean
    # identical stream on both sides
    assert comparison.baseline.completed == comparison.mallacc.completed
    assert comparison.baseline.calls == comparison.mallacc.calls


def test_sampled_mode_estimates_total():
    exact = run_traffic(CFG)
    cfg = TrafficConfig(
        workload=CFG.workload, arrival=CFG.arrival, rps=CFG.rps,
        duration_s=CFG.duration_s, cores=CFG.cores, seed=CFG.seed,
        sample_stride=4,
    )
    sampled = run_traffic(cfg)
    assert sampled.skipped_requests > 0
    assert sampled.detailed_requests < exact.detailed_requests
    assert sampled.plan is not None
    point, lo, hi = sampled.alloc_cycles_ci
    assert lo <= point <= hi
    # the bootstrap estimate brackets the exact measured total loosely
    assert exact.alloc_cycles == pytest.approx(point, rel=0.5)
    sampled.check_conservation()


def test_stream_mode_single_core_only():
    with pytest.raises(ValueError, match="cores=1"):
        TrafficConfig(workload="gauss", session_mode="stream",
                      total_ops=100, cores=2)
    with pytest.raises(ValueError, match="requires total_ops"):
        TrafficConfig(workload="gauss", session_mode="stream", cores=1)
    with pytest.raises(ValueError, match="independent sessions"):
        TrafficConfig(workload="gauss", session_mode="stream",
                      total_ops=100, cores=1, sample_stride=4)


def test_capacity_probe_positive():
    cap = estimate_capacity_rps(CFG)
    assert cap > 0
    # linear in cores by construction
    one_core = TrafficConfig(workload=CFG.workload, cores=1, seed=CFG.seed)
    assert estimate_capacity_rps(CFG) == pytest.approx(
        CFG.cores * estimate_capacity_rps(one_core))


def test_load_matrix_cells_and_worker():
    cells = build_load_matrix(CFG, loads=(0.4,), arrivals=("poisson",),
                              capacity_rps=300.0)
    [cell] = cells
    assert cell.rps == pytest.approx(120.0)
    assert "traffic-xapian.abstracts-poisson" in cell.cell_id
    small = TrafficConfig(workload="gauss", arrival="poisson", rps=80.0,
                          duration_s=0.4, cores=2, seed=3)
    [small_cell] = build_load_matrix(small, loads=(0.5,), capacity_rps=160.0)
    result = run_traffic_cell(small_cell)
    assert result.cell_id == small_cell.cell_id
    assert result.summary["offered_rps"] == pytest.approx(80.0)
    for key in ("baseline_p99", "mallacc_p99", "baseline_throughput_rps",
                "mallacc_throughput_rps", "p99_improvement_pct", "load"):
        assert key in result.summary
    assert result.metrics, "worker cells must carry their registry payload"


def test_traffic_registry_bridge():
    res = run_traffic(CFG)
    reg = traffic_registry(res, alloc="baseline")
    payload = reg.to_dict()
    assert payload
    # the histogram series reproduces the engine's percentiles via counts
    assert reg.counter("requests", workload=CFG.workload,
                       arrival="poisson", alloc="baseline").value \
        == res.completed


def test_independent_sessions_slots_disjoint():
    workload = MACRO_WORKLOADS["xapian.abstracts"]
    sessions = independent_sessions(workload, 20, 24, seed=5,
                                    warmup_requests=2)
    seen: set[int] = set()
    for sess in sessions:
        local = {op.slot for op in sess.ops if op.slot >= 0}
        assert not (local & seen), "sessions must not share slot ids"
        seen |= local
        # teardown: every malloc'd slot is freed within the session
        live: set[int] = set()
        for op in sess.ops:
            if op.kind.name == "MALLOC":
                live.add(op.slot)
            elif op.kind.name in ("FREE", "FREE_SIZED"):
                live.discard(op.slot)
        assert not live, "teardown_free must close every session"


def test_stream_sessions_cover_stream_in_order():
    workload = MACRO_WORKLOADS["xapian.abstracts"]
    raw = list(workload.ops(seed=11, num_ops=100))
    sessions = stream_sessions(workload, 100, 24, seed=11)
    flattened = [op for s in sessions for op in s.ops]
    assert flattened == raw

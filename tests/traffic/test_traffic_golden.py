"""Golden-file test for the ``repro traffic --json`` payload.

A seed-pinned small run is held to the schema (mirroring the Perfetto
golden-file pattern): required keys at every level, histogram layout,
manifest presence — and the *science* subtree (everything except the
host-dependent manifest) must be byte-stable across processes and
``PYTHONHASHSEED`` values, since the payload is a comparison artifact fed
to ``repro report --compare``-style tooling and CI diffing.
"""

import json
import os
import subprocess
import sys

from repro.cli import main
from repro.traffic.latency import DEFAULT_LATENCY_BOUNDS

GOLDEN_ARGS = [
    "traffic", "xapian.abstracts", "--arrival", "all",
    "--rps", "100", "--duration", "0.4", "--cores", "2", "--seed", "7",
]

SUMMARY_KEYS = {
    "offered_rps", "requests", "measured_requests", "warmup_requests",
} | {
    f"{flavor}_{metric}"
    for flavor in ("baseline", "mallacc")
    for metric in ("throughput_rps", "alloc_cycles", "mean_alloc_cycles",
                   "contention_cycles", "p50", "p95", "p99", "p999")
} | {f"{q}_improvement_pct" for q in ("p50", "p95", "p99", "p999")}


def _payload(tmp_path):
    out = tmp_path / "traffic.json"
    main(GOLDEN_ARGS + ["--json", str(out)])
    with open(out) as fh:
        return json.load(fh)


class TestGoldenSchema:
    def test_top_level_schema(self, tmp_path):
        payload = _payload(tmp_path)
        assert payload["schema"] == "repro.traffic/v1"
        for key in ("workload", "rps", "duration_s", "clock_hz", "cores",
                    "ops_per_request", "seed", "cache_entries",
                    "sample_stride", "arrivals", "load_curve", "manifest"):
            assert key in payload, f"payload missing {key}"
        assert payload["workload"] == "xapian.abstracts"
        assert payload["load_curve"] is None  # not requested
        assert payload["manifest"], "manifest must carry provenance"

    def test_arrival_sections(self, tmp_path):
        payload = _payload(tmp_path)
        assert sorted(payload["arrivals"]) == ["bursty", "diurnal", "poisson"]
        for section in payload["arrivals"].values():
            summary = section["summary"]
            assert SUMMARY_KEYS <= set(summary), (
                f"summary missing {SUMMARY_KEYS - set(summary)}"
            )
            assert summary["requests"] > 0
            assert (summary["warmup_requests"]
                    + summary["measured_requests"]) == summary["requests"]
            for hist_key in ("baseline_hist", "mallacc_hist"):
                hist = section[hist_key]
                assert hist["bounds"] == list(DEFAULT_LATENCY_BOUNDS)
                assert len(hist["counts"]) == len(hist["bounds"]) + 1
                assert sum(hist["counts"]) == hist["count"]
                assert hist["count"] == summary["measured_requests"]

    def test_quantiles_ordered_in_payload(self, tmp_path):
        payload = _payload(tmp_path)
        for section in payload["arrivals"].values():
            s = section["summary"]
            for flavor in ("baseline", "mallacc"):
                quantiles = [s[f"{flavor}_{q}"]
                             for q in ("p50", "p95", "p99", "p999")]
                finite = [q for q in quantiles if q is not None]
                assert finite == sorted(finite)


_HASHSEED_SCRIPT = r"""
import json, sys, tempfile, os
from repro.cli import main

out = os.path.join(tempfile.mkdtemp(), "traffic.json")
main(["traffic", "xapian.abstracts", "--arrival", "all",
      "--rps", "100", "--duration", "0.4", "--cores", "2", "--seed", "7",
      "--json", out])
with open(out) as fh:
    payload = json.load(fh)
payload.pop("manifest")  # host/time-dependent provenance, not science
print(json.dumps(payload, sort_keys=True))
"""


class TestHashSeedStability:
    def test_payload_byte_identical_across_hash_seeds(self):
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(__file__))
        )
        outputs = []
        for seed in ("0", "1", "401"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", _HASHSEED_SCRIPT],
                capture_output=True, text=True, env=env, cwd=repo_root,
                timeout=240,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout.splitlines()[-1])
        assert outputs[0] == outputs[1] == outputs[2], (
            "traffic JSON payload varies with PYTHONHASHSEED"
        )

"""Statistical property tests for the arrival generators.

Each process is checked against its defining statistics over several
seeds: inter-arrival mean within tolerance of 1/rate for every model,
coefficient of variation ≈0 (constant), ≈1 (poisson), >1 (bursty), and a
chi-square-style index-of-dispersion sanity check for the Poisson stream
using the pure-python normal quantile from :mod:`repro.sim.sampling`
(the dispersion index of K window counts is ≈ χ²(K-1)/(K-1), whose
normal approximation has mean 1 and sd sqrt(2/(K-1))).
"""

import math

import pytest

from repro.sim.sampling import normal_quantile
from repro.traffic.arrivals import (
    ARRIVAL_MODELS,
    arrival_times,
    dispersion_index,
    interarrival_stats,
)

CLOCK = 1_000_000.0
SEEDS = (1, 7, 23, 101)


def _gaps(model, rate, duration, seed):
    times = arrival_times(model, rate, duration, CLOCK, seed=seed)
    assert times == sorted(times), "arrivals must be non-decreasing"
    assert all(t >= 0 for t in times)
    return times


class TestInterarrivalMean:
    @pytest.mark.parametrize("model", ARRIVAL_MODELS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mean_matches_offered_rate(self, model, seed):
        """Long-run mean inter-arrival ≈ clock/rate for every process —
        bursty and diurnal modulate the rate but preserve its mean.
        Tolerance tracks each model's count variance at ~4000 arrivals:
        the MMPP's slow state sojourns leave ~5% standard error where the
        memoryless streams sit under 2%."""
        rate = 200.0
        times = _gaps(model, rate, duration=20.0, seed=seed)
        mean, _cv = interarrival_stats(times)
        expected = CLOCK / rate
        tolerance = 0.15 if model == "bursty" else 0.05
        assert mean == pytest.approx(expected, rel=tolerance)

    @pytest.mark.parametrize("model", ARRIVAL_MODELS)
    def test_count_tracks_duration(self, model):
        rate, duration = 150.0, 10.0
        times = _gaps(model, rate, duration, seed=3)
        tolerance = 0.2 if model == "bursty" else 0.1
        assert len(times) == pytest.approx(rate * duration, rel=tolerance)


class TestCoefficientOfVariation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_constant_cv_zero(self, seed):
        times = _gaps("constant", 100.0, 5.0, seed)
        _mean, cv = interarrival_stats(times)
        assert cv < 0.01

    @pytest.mark.parametrize("seed", SEEDS)
    def test_poisson_cv_near_one(self, seed):
        times = _gaps("poisson", 300.0, 20.0, seed)
        _mean, cv = interarrival_stats(times)
        assert 0.9 < cv < 1.1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_bursty_cv_above_one(self, seed):
        """MMPP-2 is overdispersed: gaps mix two exponential rates."""
        times = _gaps("bursty", 300.0, 20.0, seed)
        _mean, cv = interarrival_stats(times)
        assert cv > 1.1

    def test_bursty_more_dispersed_than_poisson(self):
        """Window counts, not just gaps: the burst state piles arrivals
        into windows, inflating the index of dispersion."""
        poisson = _gaps("poisson", 300.0, 20.0, seed=5)
        bursty = _gaps("bursty", 300.0, 20.0, seed=5)
        assert dispersion_index(bursty, 50) > dispersion_index(poisson, 50)


class TestDispersionChiSquare:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_poisson_dispersion_within_chi_square_band(self, seed):
        """Chi-square sanity check: for Poisson arrivals the index of
        dispersion of K window counts is ≈ χ²(K-1)/(K-1).  With K=100 the
        normal approximation gives mean 1, sd sqrt(2/99); accept within
        ±z(0.995) — a two-sided 1% test per seed."""
        k = 100
        times = _gaps("poisson", 400.0, 20.0, seed)
        index = dispersion_index(times, k)
        z = normal_quantile(0.995)
        band = z * math.sqrt(2.0 / (k - 1))
        assert abs(index - 1.0) < band, (
            f"dispersion {index:.3f} outside Poisson band ±{band:.3f}"
        )

    def test_constant_underdispersed(self):
        times = _gaps("constant", 400.0, 10.0, seed=1)
        assert dispersion_index(times, 50) < 0.2


class TestDeterminismAndValidation:
    @pytest.mark.parametrize("model", ARRIVAL_MODELS)
    def test_same_seed_same_stream(self, model):
        a = arrival_times(model, 120.0, 3.0, CLOCK, seed=9)
        b = arrival_times(model, 120.0, 3.0, CLOCK, seed=9)
        assert a == b

    @pytest.mark.parametrize("model", ARRIVAL_MODELS)
    def test_seeds_decorrelate(self, model):
        a = arrival_times(model, 120.0, 3.0, CLOCK, seed=1)
        b = arrival_times(model, 120.0, 3.0, CLOCK, seed=2)
        if model == "constant":
            assert a == b  # seed-free by construction
        else:
            assert a != b

    def test_num_requests_cuts_exactly(self):
        times = arrival_times("poisson", 50.0, 1.0, CLOCK, seed=4,
                              num_requests=17)
        assert len(times) == 17

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival model"):
            arrival_times("sawtooth", 10.0, 1.0, CLOCK, seed=1)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError, match="rate must be positive"):
            arrival_times("poisson", 0.0, 1.0, CLOCK, seed=1)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration must be positive"):
            arrival_times("poisson", 10.0, 0.0, CLOCK, seed=1)

    def test_empty_stats_are_zero(self):
        assert interarrival_stats([]) == (0.0, 0.0)
        assert dispersion_index([], 10) == 0.0

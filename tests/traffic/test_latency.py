"""Property tests for the latency histogram / percentile path.

The three properties the tail-latency tables rest on:

* quantile monotonicity — p50 ≤ p95 ≤ p99 ≤ p99.9 for any stream;
* merge exactness — percentiles of sharded-then-merged histograms equal
  the serial histogram *exactly* (this is what makes offered-load sweep
  cells in worker processes trustworthy);
* conservation — every observation lands in exactly one bucket, so
  requests in == requests recorded.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.traffic.latency import DEFAULT_LATENCY_BOUNDS, LatencyHistogram

latencies = st.lists(
    st.integers(min_value=0, max_value=2 * 10**9), min_size=0, max_size=300
)


@given(latencies)
@settings(max_examples=60)
def test_quantiles_monotone(values):
    hist = LatencyHistogram()
    for v in values:
        hist.observe(v)
    assert hist.p50 <= hist.p95 <= hist.p99 <= hist.p999


@given(latencies, st.integers(min_value=1, max_value=7))
@settings(max_examples=60)
def test_merged_shards_equal_serial_exactly(values, shards):
    """Shard the stream round-robin, merge the shard histograms, and the
    result is *identical* to the serial histogram — counts, sum, and every
    percentile."""
    serial = LatencyHistogram()
    parts = [LatencyHistogram() for _ in range(shards)]
    for i, v in enumerate(values):
        serial.observe(v)
        parts[i % shards].observe(v)
    merged = parts[0]
    for part in parts[1:]:
        merged.merge(part)
    assert merged == serial
    for q in (0.5, 0.9, 0.95, 0.99, 0.999, 1.0):
        assert merged.percentile(q) == serial.percentile(q)


@given(latencies)
@settings(max_examples=60)
def test_conservation(values):
    """Requests in == requests recorded: the count, the bucket-count sum,
    and the exact value sum all agree with the input stream."""
    hist = LatencyHistogram()
    for v in values:
        hist.observe(v)
    assert hist.count == len(values)
    assert sum(hist.counts) == len(values)
    assert hist.sum == sum(values)


@given(latencies)
@settings(max_examples=40)
def test_percentile_conservative(values):
    """A reported percentile never under-reports: at least ceil(q*n)
    observations are <= the reported bucket edge."""
    hist = LatencyHistogram()
    for v in values:
        hist.observe(v)
    if not values:
        return
    for q in (0.5, 0.95, 0.99):
        edge = hist.percentile(q)
        at_or_below = sum(1 for v in values if v <= edge)
        rank = int(q * len(values))
        if rank < q * len(values):
            rank += 1
        assert at_or_below >= max(1, rank)


@given(latencies)
@settings(max_examples=30)
def test_round_trips_through_dict(values):
    hist = LatencyHistogram()
    for v in values:
        hist.observe(v)
    assert LatencyHistogram.from_dict(hist.to_dict()) == hist


def test_empty_histogram_quantiles_zero():
    hist = LatencyHistogram()
    assert hist.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0,
                                  "p999": 0.0}
    assert hist.mean == 0.0


def test_overflow_reports_inf():
    hist = LatencyHistogram(bounds=(10, 100))
    hist.observe(5000)
    assert hist.p50 == float("inf")


def test_negative_latency_rejected():
    with pytest.raises(ValueError, match="cannot be negative"):
        LatencyHistogram().observe(-1)


def test_bad_quantile_rejected():
    hist = LatencyHistogram()
    for q in (0.0, -0.5, 1.5):
        with pytest.raises(ValueError, match="q must be in"):
            hist.percentile(q)


def test_bad_bounds_rejected():
    for bounds in ((), (10, 10), (100, 10)):
        with pytest.raises(ValueError, match="sorted and distinct"):
            LatencyHistogram(bounds=bounds)


def test_merge_bounds_mismatch_rejected():
    with pytest.raises(ValueError, match="different bounds"):
        LatencyHistogram(bounds=(1, 2)).merge(LatencyHistogram(bounds=(1, 3)))


def test_registry_bridge_matches_layout():
    """to_registry lands in a MetricsRegistry histogram with the identical
    bucket layout, counts and sum included."""
    hist = LatencyHistogram()
    for v in (5, 50, 500, 5_000, 5 * 10**9):
        hist.observe(v)
    reg = MetricsRegistry()
    hist.to_registry(reg, "request_alloc_cycles", alloc="baseline")
    metric = reg.histogram(
        "request_alloc_cycles", buckets=DEFAULT_LATENCY_BOUNDS,
        alloc="baseline",
    )
    assert metric.counts == hist.counts
    assert metric.count == hist.count
    assert metric.sum == float(hist.sum)

"""Tests for MallaccTCMalloc: the accelerated fast path."""

import pytest

from repro.alloc import AllocatorConfig, Path, TCMalloc
from repro.core import MallaccTCMalloc, MallocCacheConfig


def warm(alloc, size=64, n=40, depth=4, rounds=8):
    """Warm like a long-running process: repeated alloc/free rounds grow
    max_length (slow start) so the free list keeps a standing depth."""
    for _ in range(rounds):
        held = [alloc.malloc(size)[0] for _ in range(depth)]
        for p in held:
            alloc.sized_free(p, size)
    for _ in range(n):
        p, _ = alloc.malloc(size)
        alloc.sized_free(p, size)


class TestFunctionalEquivalence:
    def test_identical_pointer_stream_to_baseline(self):
        """Mallacc is a performance optimization only: the pointers handed
        out must be exactly those stock TCMalloc would hand out."""
        import random

        def run(cls):
            alloc = cls(config=AllocatorConfig(release_rate=0))
            rng = random.Random(42)
            live, out = [], []
            for _ in range(400):
                if live and rng.random() < 0.45:
                    alloc.sized_free(*live.pop(rng.randrange(len(live))))
                else:
                    size = rng.choice([16, 32, 64, 200, 1024])
                    ptr, _ = alloc.malloc(size)
                    live.append((ptr, size))
                    out.append(ptr)
            return out

        assert run(TCMalloc) == run(MallaccTCMalloc)

    def test_consistency_invariants_after_churn(self):
        import random

        alloc = MallaccTCMalloc()
        rng = random.Random(3)
        live = []
        for _ in range(500):
            if live and rng.random() < 0.5:
                alloc.free(live.pop(rng.randrange(len(live))))
            else:
                live.append(alloc.malloc(rng.choice([16, 48, 64, 128, 512]))[0])
        alloc.malloc_cache.check_invariants(alloc.machine.memory)
        alloc.check_conservation()


class TestSpeedup:
    def test_warm_fast_path_faster_than_baseline(self):
        base, accel = TCMalloc(), MallaccTCMalloc()
        warm(base)
        warm(accel)
        _, rb = base.malloc(64)
        _, ra = accel.malloc(64)
        assert rb.path is Path.FAST and ra.path is Path.FAST
        assert ra.cycles < rb.cycles

    def test_speedup_up_to_50_percent(self):
        """The abstract's headline: malloc latency reduced by up to 50%."""
        base, accel = TCMalloc(), MallaccTCMalloc()
        warm(base, n=100)
        warm(accel, n=100)
        rb = base.malloc(64)[1]
        ra = accel.malloc(64)[1]
        reduction = (rb.cycles - ra.cycles) / rb.cycles
        assert 0.25 <= reduction <= 0.6

    def test_sampling_leaves_fast_path(self):
        accel = MallaccTCMalloc()
        warm(accel)
        _, rec = accel.malloc(64)
        # Baseline sampling would emit SAMPLING-tagged uops; Mallacc none.
        base = TCMalloc()
        warm(base)
        _, rb = base.malloc(64)
        assert rec.num_uops < rb.num_uops

    def test_sampling_still_samples(self):
        accel = MallaccTCMalloc(config=AllocatorConfig(sample_parameter=2048))
        for _ in range(64):
            accel.malloc(128)
        assert accel.pmu.num_samples >= 2

    def test_free_also_faster_with_sized_delete(self):
        base, accel = TCMalloc(), MallaccTCMalloc()
        warm(base)
        warm(accel)
        pb, _ = base.malloc(64)
        pa, _ = accel.malloc(64)
        rb = base.sized_free(pb, 64)
        ra = accel.sized_free(pa, 64)
        assert ra.cycles <= rb.cycles


class TestCacheBehaviour:
    def test_size_class_hits_after_warmup(self):
        accel = MallaccTCMalloc()
        warm(accel, n=50)
        assert accel.malloc_cache.sz_hit_rate > 0.9

    def test_pop_hits_with_standing_depth(self):
        accel = MallaccTCMalloc()
        warm(accel, n=50, depth=4)
        stats = accel.malloc_cache.stats
        assert stats.pop_hits > 0

    def test_cold_cache_falls_back_to_software(self):
        accel = MallaccTCMalloc()
        ptr, rec = accel.malloc(64)
        assert ptr > 0  # fallback path functioned
        assert accel.malloc_cache.stats.sz_misses >= 1

    def test_small_cache_evicts_across_classes(self):
        accel = MallaccTCMalloc(cache_config=MallocCacheConfig(num_entries=2))
        for size in (16, 32, 64, 128, 256, 512):
            p, _ = accel.malloc(size)
            accel.sized_free(p, size)
        assert accel.malloc_cache.stats.evictions > 0

    def test_context_switch_flush_is_safe(self):
        accel = MallaccTCMalloc()
        warm(accel)
        accel.context_switch()
        p, rec = accel.malloc(64)
        assert rec.path is Path.FAST  # thread cache unaffected
        accel.sized_free(p, 64)
        accel.malloc_cache.check_invariants(accel.machine.memory)

    def test_non_sized_free_uses_pagemap_not_cache(self):
        accel = MallaccTCMalloc()
        warm(accel)
        hits_before = accel.malloc_cache.stats.sz_hits
        p, _ = accel.malloc(64)  # one lookup
        accel.free(p)  # non-sized: no szlookup
        assert accel.malloc_cache.stats.sz_hits == hits_before + 1


class TestPrefetchBlocking:
    def test_tight_loop_can_block(self):
        """The Figure 17 tp effect: back-to-back ops on one class arrive
        inside the prefetch window and stall."""
        accel = MallaccTCMalloc()
        # Standing depth so pops hit and prefetches fire.
        held = [accel.malloc(64)[0] for _ in range(6)]
        for p in held:
            accel.sized_free(p, 64)
        for _ in range(60):
            p, _ = accel.malloc(64)
            accel.sized_free(p, 64)
        assert accel.malloc_cache.stats.prefetches > 0

    def test_blocking_disabled_never_stalls(self):
        accel = MallaccTCMalloc(
            cache_config=MallocCacheConfig(prefetch_blocking=False)
        )
        held = [accel.malloc(64)[0] for _ in range(6)]
        for p in held:
            accel.sized_free(p, 64)
        for _ in range(60):
            p, _ = accel.malloc(64)
            accel.sized_free(p, 64)
        assert accel.malloc_cache.stats.blocked_cycles == 0


class TestConfigurations:
    @pytest.mark.parametrize("entries", [2, 8, 16, 32])
    def test_all_sizes_functional(self, entries):
        accel = MallaccTCMalloc(cache_config=MallocCacheConfig(num_entries=entries))
        warm(accel, n=20)
        accel.malloc_cache.check_invariants(accel.machine.memory)

    def test_raw_size_keying_mode(self):
        accel = MallaccTCMalloc(cache_config=MallocCacheConfig(index_keyed=False))
        warm(accel, n=20)
        assert accel.malloc_cache.sz_hit_rate > 0.5

    def test_head_only_mode(self):
        accel = MallaccTCMalloc(cache_config=MallocCacheConfig(cache_next=False))
        warm(accel, n=30)
        accel.malloc_cache.check_invariants(accel.machine.memory)
        accel.check_conservation()

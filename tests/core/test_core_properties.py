"""Property-based tests for Mallacc correctness (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc import AllocatorConfig, TCMalloc
from repro.core import MallaccTCMalloc, MallocCacheConfig

SIZES = st.sampled_from([8, 16, 32, 48, 64, 128, 256, 1024, 4096])


def replay(cls, seed, ops, **kwargs):
    alloc = cls(config=AllocatorConfig(release_rate=0), **kwargs)
    rng = random.Random(seed)
    live, ptrs = [], []
    for size in ops:
        if live and rng.random() < 0.5:
            ptr, psize = live.pop(rng.randrange(len(live)))
            if rng.random() < 0.5:
                alloc.sized_free(ptr, psize)
            else:
                alloc.free(ptr)
        else:
            ptr, _ = alloc.malloc(size)
            live.append((ptr, size))
            ptrs.append(ptr)
    return alloc, ptrs


@given(st.integers(0, 10_000), st.lists(SIZES, min_size=1, max_size=60))
@settings(max_examples=25, deadline=None)
def test_mallacc_pointer_equivalence(seed, ops):
    """For any op sequence, Mallacc returns exactly the baseline pointers."""
    _, base_ptrs = replay(TCMalloc, seed, ops)
    _, accel_ptrs = replay(MallaccTCMalloc, seed, ops)
    assert base_ptrs == accel_ptrs


@given(st.integers(0, 10_000), st.lists(SIZES, min_size=1, max_size=60))
@settings(max_examples=25, deadline=None)
def test_malloc_cache_invariants_always_hold(seed, ops):
    alloc, _ = replay(MallaccTCMalloc, seed, ops)
    alloc.malloc_cache.check_invariants(alloc.machine.memory)
    alloc.check_conservation()


@given(
    st.integers(0, 1_000),
    st.lists(SIZES, min_size=1, max_size=40),
    st.integers(min_value=1, max_value=32),
)
@settings(max_examples=20, deadline=None)
def test_any_cache_size_is_correct(seed, ops, entries):
    alloc, ptrs = replay(
        MallaccTCMalloc, seed, ops, cache_config=MallocCacheConfig(num_entries=entries)
    )
    _, base_ptrs = replay(TCMalloc, seed, ops)
    assert ptrs == base_ptrs
    alloc.malloc_cache.check_invariants(alloc.machine.memory)


@given(st.integers(0, 1_000), st.lists(SIZES, min_size=1, max_size=40))
@settings(max_examples=15, deadline=None)
def test_head_only_and_raw_keying_modes_correct(seed, ops):
    for cfg in (
        MallocCacheConfig(cache_next=False),
        MallocCacheConfig(index_keyed=False),
        MallocCacheConfig(prefetch_blocking=False),
        MallocCacheConfig(eviction="fifo", num_entries=4),
    ):
        alloc, ptrs = replay(MallaccTCMalloc, seed, ops, cache_config=cfg)
        _, base_ptrs = replay(TCMalloc, seed, ops)
        assert ptrs == base_ptrs
        alloc.malloc_cache.check_invariants(alloc.machine.memory)


@given(st.lists(SIZES, min_size=4, max_size=40))
@settings(max_examples=15, deadline=None)
def test_flush_anywhere_preserves_correctness(ops):
    """Context switches may flush the malloc cache at any point."""
    alloc = MallaccTCMalloc(config=AllocatorConfig(release_rate=0))
    live = []
    for i, size in enumerate(ops):
        ptr, _ = alloc.malloc(size)
        live.append((ptr, size))
        if i % 3 == 2:
            alloc.context_switch()
        if len(live) > 2:
            p, s = live.pop(0)
            alloc.sized_free(p, s)
    alloc.malloc_cache.check_invariants(alloc.machine.memory)
    alloc.check_conservation()

"""Tests for the energy model."""

import pytest

from repro.alloc import TCMalloc
from repro.core import MallaccTCMalloc
from repro.core.energy import (
    DRAM_PJ,
    L1_HIT_PJ,
    EnergyMeter,
    cam_search_energy,
    trace_energy,
)
from repro.core.malloc_cache import MallocCacheConfig
from repro.sim.uop import Tag, TraceBuilder


class TestTraceEnergy:
    def test_alu_only(self):
        tb = TraceBuilder()
        tb.alu()
        tb.alu()
        e = trace_energy(tb.build())
        assert e.compute_pj == pytest.approx(1.0)
        assert e.total_pj == e.compute_pj

    def test_load_energy_by_level(self):
        tb = TraceBuilder()
        tb.load(0x1000, latency=4)  # L1
        tb.load(0x2000, latency=200)  # DRAM
        e = trace_energy(tb.build())
        assert e.load_pj == pytest.approx(L1_HIT_PJ + DRAM_PJ)

    def test_mallacc_op_costs_cam_search(self):
        tb = TraceBuilder()
        tb.mallacc(3)
        cfg = MallocCacheConfig(num_entries=16)
        e = trace_energy(tb.build(), cfg)
        assert e.mallacc_pj == pytest.approx(cam_search_energy(cfg))

    def test_cam_search_cheaper_than_l1(self):
        """The energy trade that makes the accelerator worthwhile."""
        assert cam_search_energy(MallocCacheConfig(num_entries=16)) < L1_HIT_PJ
        assert cam_search_energy(MallocCacheConfig(num_entries=32)) < 2 * L1_HIT_PJ

    def test_cam_energy_scales_with_entries(self):
        assert cam_search_energy(MallocCacheConfig(num_entries=32)) > cam_search_energy(
            MallocCacheConfig(num_entries=8)
        )

    def test_fixed_blocks_charged_by_latency(self):
        tb = TraceBuilder()
        tb.fixed(1000, tag=Tag.SLOW_PATH)
        e = trace_energy(tb.build())
        assert e.fixed_pj == pytest.approx(2000.0)


class TestEnergyMeter:
    def _steady(self, alloc, pairs=80):
        for _ in range(8):
            held = [alloc.malloc(64)[0] for _ in range(4)]
            for p in held:
                alloc.sized_free(p, 64)
        meter = EnergyMeter(alloc)
        for _ in range(pairs):
            p, _ = alloc.malloc(64)
            alloc.sized_free(p, 64)
        meter.detach()
        return meter

    def test_meter_counts_calls(self):
        meter = self._steady(TCMalloc(), pairs=10)
        assert meter.calls == 20
        assert meter.total_pj > 0

    def test_mallacc_saves_energy_on_fast_path(self):
        """Removing two table loads and two list loads saves more energy
        than the CAM probes cost."""
        base = self._steady(TCMalloc())
        accel = self._steady(MallaccTCMalloc())
        assert accel.mean_pj_per_call < base.mean_pj_per_call

    def test_detach_restores(self):
        alloc = TCMalloc()
        meter = EnergyMeter(alloc)
        meter.detach()
        before = meter.calls
        alloc.malloc(64)
        assert meter.calls == before

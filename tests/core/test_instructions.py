"""Tests for the five-instruction ISA layer."""

import pytest

from repro.alloc.context import Machine
from repro.core.instructions import MallaccISA
from repro.core.malloc_cache import MallocCache, MallocCacheConfig
from repro.sim.memory import NULL
from repro.sim.uop import UopKind


@pytest.fixture
def machine():
    return Machine()


@pytest.fixture
def isa():
    return MallaccISA(cache=MallocCache(MallocCacheConfig()))


class TestSzInstructions:
    def test_lookup_miss_sets_zf_clear(self, machine, isa):
        em = machine.new_emitter()
        out = isa.mcszlookup(em, 64)
        assert not out.hit
        trace = em.build()
        assert trace.count(UopKind.MALLACC) == 1
        assert trace.count(UopKind.BRANCH) == 1

    def test_lookup_latency_matches_config(self, machine, isa):
        em = machine.new_emitter()
        isa.mcszlookup(em, 64)
        mallacc = [u for u in em.build() if u.kind is UopKind.MALLACC]
        assert mallacc[0].latency == isa.cache.config.lookup_latency

    def test_update_then_hit(self, machine, isa):
        em = machine.new_emitter()
        isa.mcszupdate(em, 64, 64, 5)
        out = isa.mcszlookup(em, 64)
        assert out.hit and out.size_class == 5 and out.alloc_size == 64

    def test_update_emits_single_cycle_uop(self, machine, isa):
        em = machine.new_emitter()
        isa.mcszupdate(em, 64, 64, 5)
        assert em.build().uops[0].latency == 1


class TestListInstructions:
    def test_pop_miss(self, machine, isa):
        isa.begin_call()
        em = machine.new_emitter()
        out = isa.mchdpop(em, 5)
        assert not out.hit and out.head == NULL

    def test_push_then_push_then_pop_hit(self, machine, isa):
        isa.begin_call()
        em = machine.new_emitter()
        isa.mcszupdate(em, 64, 64, 5)
        isa.mchdpush(em, 5, 0x1000)
        isa.mchdpush(em, 5, 0x2000)
        out = isa.mchdpop(em, 5)
        assert out.hit and out.head == 0x2000 and out.next_ptr == 0x1000

    def test_ordering_register_serializes_list_ops(self, machine, isa):
        isa.begin_call()
        em = machine.new_emitter()
        isa.mcszupdate(em, 64, 64, 5)
        _, _, push1 = isa.mchdpush(em, 5, 0x1000)
        _, _, push2 = isa.mchdpush(em, 5, 0x2000)
        out = isa.mchdpop(em, 5)
        trace = em.build()
        assert push1 in trace.uops[push2].deps
        assert push2 in trace.uops[out.uop].deps

    def test_begin_call_resets_ordering(self, machine, isa):
        isa.begin_call()
        em = machine.new_emitter()
        isa.mcszupdate(em, 64, 64, 5)
        isa.mchdpush(em, 5, 0x1000)
        isa.begin_call()
        em2 = machine.new_emitter()
        out = isa.mchdpop(em2, 5)
        assert em2.build().uops[out.uop].deps == ()


class TestPrefetchInstruction:
    def test_prefetch_null_is_noop(self, machine, isa):
        isa.begin_call()
        em = machine.new_emitter()
        assert isa.mcnxtprefetch(em, 5, NULL) is None
        assert len(em.build()) == 0

    def test_prefetch_emits_async_uop_and_fills(self, machine, isa):
        machine.memory.write_word(0x1000, 0x2000)
        isa.begin_call()
        em = machine.new_emitter()
        isa.mcszupdate(em, 64, 64, 5)
        uop = isa.mcnxtprefetch(em, 5, 0x1000)
        assert uop is not None
        trace = em.build()
        assert trace.uops[uop].kind is UopKind.PREFETCH
        entry = isa.cache._find_class(5)
        assert entry.head == 0x1000 and entry.next == 0x2000

    def test_prefetch_sets_blocking_window(self, machine, isa):
        machine.memory.write_word(0x1000, 0x2000)
        isa.begin_call()
        em = machine.new_emitter()
        isa.mcszupdate(em, 64, 64, 5)
        isa.mcnxtprefetch(em, 5, 0x1000)
        entry = isa.cache._find_class(5)
        # Cold line -> DRAM latency; arrival is in the future.
        assert entry.prefetch_ready > machine.clock

    def test_prefetch_warms_data_cache(self, machine, isa):
        machine.memory.write_word(0x1000, 0x2000)
        isa.begin_call()
        em = machine.new_emitter()
        isa.mcszupdate(em, 64, 64, 5)
        isa.mcnxtprefetch(em, 5, 0x1000)
        assert machine.hierarchy.l1.contains(0x1000)

"""Tests for the malloc cache (Figure 8 structure, Figures 9/11 semantics)."""

import pytest

from repro.core.malloc_cache import CacheEntry, MallocCache, MallocCacheConfig
from repro.sim.memory import NULL, SimulatedMemory


def cache(**kwargs):
    return MallocCache(MallocCacheConfig(**kwargs))


class TestConfig:
    def test_defaults(self):
        cfg = MallocCacheConfig()
        assert cfg.num_entries == 16
        assert cfg.index_keyed and cfg.cache_next and cfg.prefetch_blocking

    def test_index_keying_adds_latency_cycle(self):
        assert MallocCacheConfig(index_keyed=True).lookup_latency == 3
        assert MallocCacheConfig(index_keyed=False).lookup_latency == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MallocCacheConfig(num_entries=0)
        with pytest.raises(ValueError):
            MallocCacheConfig(eviction="random")


class TestSizeClassHalf:
    def test_miss_then_learn_then_hit(self):
        c = cache()
        assert c.szlookup(64) is None
        c.szupdate(64, 64, 5)
        entry = c.szlookup(64)
        assert entry is not None
        assert entry.size_class == 5 and entry.alloc_size == 64

    def test_range_covers_rounding_span(self):
        """Learning (50 -> class of 64) must hit for 49..64 via the index
        range [idx(50), idx(64)]."""
        c = cache()
        c.szupdate(50, 64, 5)
        assert c.szlookup(56) is not None
        assert c.szlookup(64) is not None

    def test_range_widens_downward(self):
        c = cache()
        c.szupdate(60, 64, 5)
        assert c.szlookup(49) is None
        c.szupdate(49, 64, 5)
        assert c.szlookup(50) is not None
        # Still one entry for the class.
        assert sum(1 for e in c.entries if e.valid) == 1

    def test_distinct_classes_distinct_entries(self):
        c = cache()
        c.szupdate(32, 32, 3)
        c.szupdate(64, 64, 5)
        assert c.szlookup(32).size_class == 3
        assert c.szlookup(64).size_class == 5

    def test_raw_size_keying(self):
        c = cache(index_keyed=False)
        c.szupdate(50, 64, 5)
        assert c.szlookup(55) is not None
        assert c.szlookup(49) is None  # raw range [50, 64]

    def test_index_keying_learns_faster_than_raw(self):
        """The paper's motivation for index keying: the index space is
        smaller, so a single update covers more raw sizes."""
        idx, raw = cache(index_keyed=True), cache(index_keyed=False)
        idx.szupdate(49, 64, 5)
        raw.szupdate(49, 64, 5)
        assert idx.szlookup(50) is not None  # idx(49)==idx(50)
        assert raw.szlookup(45) is None

    def test_lru_eviction(self):
        c = cache(num_entries=2)
        c.szupdate(16, 16, 1)
        c.szupdate(32, 32, 2)
        c.szlookup(16)  # refresh class 1
        c.szupdate(64, 64, 3)  # evicts class 2
        assert c.szlookup(16) is not None
        assert c.szlookup(32) is None
        assert c.stats.evictions == 1

    def test_fifo_eviction(self):
        c = cache(num_entries=2, eviction="fifo")
        c.szupdate(16, 16, 1)
        c.szupdate(32, 32, 2)
        c.szlookup(16)  # refresh does not matter for FIFO
        c.szupdate(64, 64, 3)  # evicts the oldest: class 1
        assert c.szlookup(16) is None
        assert c.szlookup(32) is not None

    def test_eviction_clears_list_half(self):
        c = cache(num_entries=1)
        c.szupdate(16, 16, 1)
        c.hdpush(1, 0x1000, now=0)
        c.szupdate(32, 32, 2)
        entry = c.szlookup(32)
        assert entry.head == NULL and entry.next == NULL

    def test_hit_rates(self):
        c = cache()
        c.szlookup(64)
        c.szupdate(64, 64, 5)
        c.szlookup(64)
        assert c.sz_hit_rate == pytest.approx(0.5)


class TestListHalf:
    def _entry(self, c, cl=5):
        c.szupdate(64, 64, cl)
        return c

    def test_pop_unknown_class_misses(self):
        c = cache()
        entry, head, nxt, stall = c.hdpop(9, now=0)
        assert entry is None and head == NULL

    def test_push_learns_head_pop_needs_both(self):
        c = self._entry(cache())
        hit, old, _ = c.hdpush(5, 0x1000, now=0)
        assert not hit and old == NULL  # nothing cached to shift
        entry, *_ = c.hdpop(5, now=0)
        assert entry is None  # Next still invalid -> miss (and invalidate)

    def test_push_push_pop_hits(self):
        c = self._entry(cache())
        c.hdpush(5, 0x1000, now=0)
        hit, old, _ = c.hdpush(5, 0x2000, now=0)
        assert hit and old == 0x1000
        entry, head, nxt, _ = c.hdpop(5, now=0)
        assert entry is not None
        assert head == 0x2000 and nxt == 0x1000

    def test_pop_shifts_next_to_head(self):
        c = self._entry(cache())
        c.hdpush(5, 0x1000, now=0)
        c.hdpush(5, 0x2000, now=0)
        c.hdpop(5, now=0)
        entry = c._find_class(5)
        assert entry.head == 0x1000 and entry.next == NULL

    def test_pop_miss_invalidates_partial(self):
        c = self._entry(cache())
        c.hdpush(5, 0x1000, now=0)  # head only
        c.hdpop(5, now=0)  # miss
        entry = c._find_class(5)
        assert entry.head == NULL and entry.next == NULL

    def test_invalidate_class(self):
        c = self._entry(cache())
        c.hdpush(5, 0x1000, now=0)
        c.invalidate_class(5)
        assert c._find_class(5).head == NULL


class TestPrefetch:
    def _ready(self):
        c = cache()
        c.szupdate(64, 64, 5)
        return c

    def test_fill_empty_entry_makes_poppable(self):
        c = self._ready()
        assert c.nxtprefetch(5, head_addr=0x1000, head_next=0x2000, ready_at=100)
        entry, head, nxt, stall = c.hdpop(5, now=200)
        assert entry is not None
        assert head == 0x1000 and nxt == 0x2000

    def test_fill_next_when_head_matches(self):
        c = self._ready()
        c.hdpush(5, 0x1000, now=0)  # head = 0x1000, next invalid
        assert c.nxtprefetch(5, head_addr=0x1000, head_next=0x2000, ready_at=0)
        entry = c._find_class(5)
        assert entry.next == 0x2000

    def test_mismatched_head_not_filled(self):
        c = self._ready()
        c.hdpush(5, 0x9000, now=0)
        assert not c.nxtprefetch(5, head_addr=0x1000, head_next=0x2000, ready_at=0)
        assert c._find_class(5).head == 0x9000

    def test_unknown_class_ignored(self):
        c = self._ready()
        assert not c.nxtprefetch(7, head_addr=0x1000, head_next=0x2000, ready_at=0)

    def test_blocking_stalls_early_pop(self):
        c = self._ready()
        c.nxtprefetch(5, head_addr=0x1000, head_next=0x2000, ready_at=150)
        entry, head, nxt, stall = c.hdpop(5, now=100)
        assert stall == 50
        assert c.stats.blocked_cycles == 50

    def test_no_stall_after_arrival(self):
        c = self._ready()
        c.nxtprefetch(5, head_addr=0x1000, head_next=0x2000, ready_at=150)
        *_, stall = c.hdpop(5, now=200)
        assert stall == 0

    def test_blocking_disabled(self):
        c = cache(prefetch_blocking=False)
        c.szupdate(64, 64, 5)
        c.nxtprefetch(5, head_addr=0x1000, head_next=0x2000, ready_at=10**9)
        *_, stall = c.hdpop(5, now=0)
        assert stall == 0

    def test_push_also_blocks(self):
        c = self._ready()
        c.nxtprefetch(5, head_addr=0x1000, head_next=0x2000, ready_at=150)
        hit, old, stall = c.hdpush(5, 0x3000, now=120)
        assert stall == 30


class TestHeadOnlyMode:
    def test_pop_hits_on_head_alone(self):
        c = cache(cache_next=False)
        c.szupdate(64, 64, 5)
        c.hdpush(5, 0x1000, now=0)
        entry, head, nxt, _ = c.hdpop(5, now=0)
        assert entry is not None
        assert head == 0x1000 and nxt == NULL

    def test_push_does_not_populate_next(self):
        c = cache(cache_next=False)
        c.szupdate(64, 64, 5)
        c.hdpush(5, 0x1000, now=0)
        c.hdpush(5, 0x2000, now=0)
        assert c._find_class(5).next == NULL


class TestMaintenance:
    def test_flush_drops_everything(self):
        c = cache()
        c.szupdate(64, 64, 5)
        c.hdpush(5, 0x1000, now=0)
        c.flush()
        assert c.szlookup(64) is None
        assert c.stats.flushes == 1

    def test_invariants_pass_for_consistent_state(self):
        mem = SimulatedMemory()
        mem.write_word(0x1000, 0x2000)
        c = cache()
        c.szupdate(64, 64, 5)
        c.hdpush(5, 0x2000, now=0)
        c.hdpush(5, 0x1000, now=0)
        c.check_invariants(mem)

    def test_invariants_catch_adjacency_violation(self):
        mem = SimulatedMemory()
        mem.write_word(0x1000, 0x3000)  # head -> 0x3000, not cached next
        c = cache()
        c.szupdate(64, 64, 5)
        c.hdpush(5, 0x2000, now=0)
        c.hdpush(5, 0x1000, now=0)
        with pytest.raises(AssertionError):
            c.check_invariants(mem)

    def test_invariants_catch_overlapping_ranges(self):
        c = cache()
        c.entries[0] = CacheEntry(valid=True, lo=1, hi=10, size_class=1)
        c.entries[1] = CacheEntry(valid=True, lo=5, hi=12, size_class=2)
        with pytest.raises(AssertionError):
            c.check_invariants(SimulatedMemory())

    def test_pop_hit_rate(self):
        c = cache()
        c.szupdate(64, 64, 5)
        c.hdpop(5, now=0)  # miss
        c.hdpush(5, 0x1000, now=0)
        c.hdpush(5, 0x2000, now=0)
        c.hdpop(5, now=0)  # hit
        assert c.pop_hit_rate == pytest.approx(0.5)


class TestFillRules:
    """The 'paper' vs 'adjacent' prefetch fill semantics (DESIGN.md §2).

    Figure 11's literal pseudocode fills an empty entry's Head with the
    *value* the prefetch returns — one element early.  Taken at face value a
    later push would shift that speculative Head into Next and corrupt the
    list, so the model marks it unconfirmed and never trusts it.  With all
    list traffic routed through mchdpush (required for coherence anyway),
    the two rules end up nearly indistinguishable — evidence the prefetch
    fill path is a minor effect and the pseudocode's ambiguity is benign.
    """

    def test_paper_rule_fill_is_one_early_and_unconfirmed(self):
        c = cache(fill_rule="paper")
        c.szupdate(64, 64, 5)
        c.nxtprefetch(5, head_addr=0x1000, head_next=0x2000, ready_at=0)
        entry = c._find_class(5)
        assert entry.head == 0x2000  # the successor, not the head
        assert entry.head_unconfirmed

    def test_paper_rule_pop_never_hits_from_fill(self):
        c = cache(fill_rule="paper")
        c.szupdate(64, 64, 5)
        c.nxtprefetch(5, head_addr=0x1000, head_next=0x2000, ready_at=0)
        entry, head, _, _ = c.hdpop(5, now=10**9)
        assert entry is None and head == 0

    def test_paper_rule_push_discards_unconfirmed_head(self):
        c = cache(fill_rule="paper")
        c.szupdate(64, 64, 5)
        c.nxtprefetch(5, head_addr=0x1000, head_next=0x2000, ready_at=0)
        hit, old_head, _ = c.hdpush(5, 0x3000, now=10**9)
        # The speculative head must not be handed to software.
        assert not hit and old_head == 0
        assert c._find_class(5).head == 0x3000

    def test_adjacent_rule_converges_immediately(self):
        c = cache(fill_rule="adjacent")
        c.szupdate(64, 64, 5)
        c.nxtprefetch(5, head_addr=0x1000, head_next=0x2000, ready_at=0)
        entry, head, nxt, _ = c.hdpop(5, now=10**9)
        assert entry is not None and head == 0x1000 and nxt == 0x2000

    def test_invalid_fill_rule_rejected(self):
        with pytest.raises(ValueError):
            MallocCacheConfig(fill_rule="bogus")

    def test_rules_equivalent_end_to_end(self):
        """With coherent push training, overall hit rates match."""
        from repro.core import MallaccTCMalloc

        def hit_rate(rule):
            alloc = MallaccTCMalloc(cache_config=MallocCacheConfig(fill_rule=rule))
            for _ in range(150):
                p, _ = alloc.malloc(64)
                alloc.sized_free(p, 64)
            return alloc.malloc_cache.pop_hit_rate

        assert abs(hit_rate("adjacent") - hit_rate("paper")) < 0.15

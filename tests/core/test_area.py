"""Tests for the Section 6.4 area model."""

import pytest

from repro.core.area import AreaBreakdown, AreaModel


class TestBitCounts:
    def test_152_bits_per_entry_at_16(self):
        """The paper: 'The malloc cache requires 152 bits of storage per
        entry'.  Our inventory (24 index + 8 class + 4 LRU + 117 data)
        sums to 153; accept the one-bit accounting difference."""
        assert AreaModel.bits_per_entry(16) in (152, 153)

    def test_sram_bits(self):
        """Two 48-bit pointers + 20-bit size + valid = 117."""
        assert AreaModel.sram_bits_per_entry() == 117

    def test_lru_bits_scale_with_entries(self):
        assert AreaModel.lru_bits_per_entry(16) == 4
        assert AreaModel.lru_bits_per_entry(32) == 5
        assert AreaModel.lru_bits_per_entry(2) == 1

    def test_cam_and_sram_bytes_at_16_entries(self):
        """The paper: 'the CAMs and SRAM are 72 bytes and 234 bytes'."""
        b = AreaModel.breakdown(16)
        assert b.cam_bits / 8 == 72
        assert b.sram_bits == 16 * 117  # 234 bytes
        assert b.sram_bits / 8 == pytest.approx(234, rel=0.01)


class TestArea:
    def test_total_under_1500_um2(self):
        """The paper's headline: total area below ~1500 um^2."""
        b = AreaModel.breakdown(16)
        assert 1100 <= b.total_um2 <= 1500
        assert b.cam_area_um2 == pytest.approx(873, rel=0.01)
        assert b.sram_area_um2 == pytest.approx(346, rel=0.01)

    def test_fraction_of_haswell_core(self):
        """'merely 0.006% of the core area'."""
        b = AreaModel.breakdown(16)
        assert b.fraction_of_haswell_core == pytest.approx(0.00006, rel=0.2)

    def test_area_scales_with_entries(self):
        a16 = AreaModel.breakdown(16).total_um2
        a32 = AreaModel.breakdown(32).total_um2
        a8 = AreaModel.breakdown(8).total_um2
        assert a8 < a16 < a32
        # Storage roughly doubles; fixed logic does not.
        assert a32 < 2 * a16


class TestPollack:
    def test_pollack_expectation_tiny(self):
        expected = AreaModel.pollack_expected_speedup(0.00006)
        assert expected == pytest.approx(0.00003, rel=0.01)

    def test_measured_speedup_beats_pollack_by_100x(self):
        """The paper: 0.43% mean speedup is >140x the Pollack expectation."""
        advantage = AreaModel.pollack_advantage(0.0043, num_entries=16)
        assert advantage > 100

    def test_advantage_monotone_in_speedup(self):
        assert AreaModel.pollack_advantage(0.008) > AreaModel.pollack_advantage(0.004)

"""Tests for the Mallacc sampling performance counter."""

from repro.alloc.constants import AllocatorConfig
from repro.alloc.context import Machine
from repro.core.sampling import SamplingCounter
from repro.sim.uop import UopKind


def make(period=1024, enabled=True):
    return SamplingCounter(
        config=AllocatorConfig(sample_parameter=period, sampling_enabled=enabled)
    )


class TestCounter:
    def test_accumulates_without_firing(self):
        pmu = make(period=1000)
        assert not pmu.count(400)
        assert not pmu.count(400)
        assert pmu.accumulated == 800

    def test_fires_at_threshold(self):
        pmu = make(period=1000)
        pmu.count(600)
        assert pmu.count(600)
        assert pmu.interrupts == 1

    def test_residual_carries_over(self):
        pmu = make(period=1000)
        pmu.count(1500)
        assert pmu.accumulated == 500

    def test_disabled(self):
        pmu = make(enabled=False)
        assert not pmu.count(10**9)
        assert pmu.interrupts == 0

    def test_counting_emits_no_uops(self):
        """The whole point: sampling leaves the instruction stream."""
        pmu = make(period=100)
        fired = pmu.count(200)
        assert fired  # and no Emitter was even involved

    def test_sampling_rate_matches_software_sampler(self):
        pmu = make(period=1000)
        fires = sum(1 for _ in range(100) if pmu.count(100))
        assert fires == 10


class TestInterrupt:
    def test_service_costs_and_records(self):
        machine = Machine()
        pmu = make(period=100)
        pmu.count(200)
        em = machine.new_emitter()
        pmu.service_interrupt(em, 200, clock=1234)
        assert pmu.num_samples == 1
        assert pmu.samples[0].size == 200 and pmu.samples[0].clock == 1234
        fixed = [u for u in em.build() if u.kind is UopKind.FIXED]
        assert len(fixed) == 2  # interrupt entry + stack trace
        assert sum(u.latency for u in fixed) >= 1000

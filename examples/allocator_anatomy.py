"""Anatomy of a malloc call: watch the fast path at micro-op granularity.

The paper's Section 3.3 dissects the ~40-instruction fast path into size
class computation, sampling, free-list pop, and residual overhead.  This
example instruments single calls — cold (page allocator), lukewarm (central
list), and hot (thread cache) — and prints both the pool path taken and the
scheduled micro-op trace of the hot call, with and without Mallacc.

Run:  python examples/allocator_anatomy.py
"""

from repro import MallaccTCMalloc, TCMalloc


def capture_trace(allocator, size):
    """Run one malloc while spying on the timing model; returns the trace
    and its schedule."""
    captured = {}
    original = allocator.machine.timing.run

    def spy(trace):
        result = original(trace)
        captured.setdefault("trace", trace)
        captured.setdefault("result", result)
        return result

    allocator.machine.timing.run = spy
    try:
        _, record = allocator.malloc(size)
    finally:
        allocator.machine.timing.run = original
    return captured["trace"], captured["result"], record


def print_trace(title, trace, result, record):
    print(f"\n{title}: {record.cycles} cycles, {len(trace)} uops, "
          f"path={record.path.value}")
    print(f"{'#':>3} {'kind':9} {'component':13} {'lat':>3} {'issue':>5} {'ready':>5}  deps")
    for i, (uop, issue, ready) in enumerate(
        zip(trace.uops, result.issue_times, result.ready_times)
    ):
        print(f"{i:>3} {uop.kind.value:9} {uop.tag.value:13} "
              f"{uop.latency:>3} {issue:>5} {ready:>5}  {list(uop.deps)}")


def warm(allocator, size=64):
    for _ in range(8):
        held = [allocator.malloc(size)[0] for _ in range(4)]
        for p in held:
            allocator.sized_free(p, size)


def main():
    baseline = TCMalloc()

    # Cold: the very first allocation walks all three pools.
    _, cold = baseline.malloc(64)
    print(f"cold call    : {cold.cycles:>6} cycles  ({cold.path.value}: span "
          f"carved, heap grown via syscall)")
    _, lukewarm = baseline.malloc(64)
    print(f"second call  : {lukewarm.cycles:>6} cycles  ({lukewarm.path.value}: "
          f"central list hit, lock paid)")
    warm(baseline)
    trace, result, hot = capture_trace(baseline, 64)
    print(f"hot call     : {hot.cycles:>6} cycles  ({hot.path.value}: "
          f"thread-cache free list pop)")

    print_trace("Baseline hot malloc", trace, result, hot)

    accelerated = MallaccTCMalloc()
    accelerated.malloc(64)
    warm(accelerated)
    atrace, aresult, ahot = capture_trace(accelerated, 64)
    print_trace("Mallacc hot malloc", atrace, aresult, ahot)

    saved = hot.cycles - ahot.cycles
    print(f"\nMallacc removed {saved} cycles "
          f"({100 * saved / hot.cycles:.0f}%) from the hot call:")
    print("  - the two size-class table loads became one 3-cycle mcszlookup")
    print("  - the sampling countdown moved into a PMU counter (zero uops)")
    print("  - the two dependent free-list loads became a 1-cycle mchdpop")


if __name__ == "__main__":
    main()

"""The allocator zoo: four designs, one substrate, one accelerator.

Section 2 of the paper surveys the allocator design space — early free-list
searching, the buddy system, and the modern multithreaded generation
(TCMalloc, jemalloc, Hoard).  This repository implements all of them on the
same simulated machine; this example races them on an identical workload and
shows where each sits on the speed/fragmentation plane, then applies Mallacc
to the three modern ones.

Run:  python examples/allocator_zoo.py
"""

import random

from repro import Jemalloc, TCMalloc, make_mallacc_jemalloc
from repro.alloc.buddy import BuddyAllocator
from repro.alloc.constants import AllocatorConfig
from repro.alloc.fragmentation import measure
from repro.alloc.hoard import HoardAllocator, MallaccHoard
from repro.core import MallaccTCMalloc

SIZES = [24, 40, 72, 130, 260, 700, 1500]
OPS = 1500


def churn(alloc, is_record_style):
    """Random malloc/free churn; returns (mean malloc cycles, allocator)."""
    rng = random.Random(7)
    live = []
    malloc_cycles = mallocs = 0
    for _ in range(OPS):
        if live and rng.random() < 0.5:
            victim = live.pop(rng.randrange(len(live)))
            alloc.free(victim)
        else:
            size = rng.choice(SIZES)
            if is_record_style:
                ptr, rec = alloc.malloc(size)
                malloc_cycles += rec.cycles
            else:
                ptr, cycles = alloc.malloc(size)
                malloc_cycles += cycles
            live.append(ptr)
            mallocs += 1
    return malloc_cycles / mallocs, alloc


def fragmentation_of(alloc):
    """Internal (rounding) fragmentation of the live set, comparably for
    every design."""
    if isinstance(alloc, BuddyAllocator):
        return alloc.stats.internal_fragmentation
    if isinstance(alloc, HoardAllocator):
        requested = allocated = 0
        for size, cl in alloc.live.values():
            requested += size
            allocated += alloc.block_size_of(cl)
        return 1.0 - requested / allocated if allocated else 0.0
    report = measure(alloc)
    return report.internal


def main():
    cfg = AllocatorConfig(release_rate=0)
    zoo = [
        ("TCMalloc", TCMalloc(config=cfg), True),
        ("TCMalloc+Mallacc", MallaccTCMalloc(config=cfg), True),
        ("jemalloc", Jemalloc(config=cfg), True),
        ("jemalloc+Mallacc", make_mallacc_jemalloc(config=cfg), True),
        ("Hoard", HoardAllocator(config=cfg), False),
        ("Hoard+Mallacc", MallaccHoard(config=cfg), False),
        ("binary buddy", BuddyAllocator(config=cfg), False),
    ]
    print(f"{'allocator':>18} {'mean malloc cy':>15} {'fragmentation':>14}")
    for name, alloc, record_style in zoo:
        mean_cycles, alloc = churn(alloc, record_style)
        frag = fragmentation_of(alloc)
        print(f"{name:>18} {mean_cycles:>15.1f} {100 * frag:>13.1f}%")

    print()
    print("The modern trio cluster at ~20-40 cycles with single-digit")
    print("rounding waste; the buddy system pays ~25% fragmentation for its")
    print("combinational-logic simplicity (Section 2's history in one")
    print("table), and the same Mallacc hardware accelerates all three")
    print("modern designs.")


if __name__ == "__main__":
    main()

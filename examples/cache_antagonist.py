"""Cache isolation: Mallacc under a cache-hostile application.

Section 3.2: "thread caches are very cheap in microbenchmarks, but can get
significantly more expensive when the requesting application itself is
cache-heavy ... a cheap 18-cycle fast-path call can turn into a hefty
100-cycle stall".  The malloc cache keeps copies of the free-list heads
inside the core, isolating the fast path from that eviction.

This example runs the paper's antagonist microbenchmark — which evicts the
less-used half of every L1/L2 set after each allocation — and shows how much
of the damage Mallacc undoes.

Run:  python examples/cache_antagonist.py
"""

from repro import MICRO, compare_workload
from repro.harness.metrics import mean_cycles


def main():
    friendly = compare_workload(MICRO["gauss_free"], num_ops=2000)
    hostile = compare_workload(MICRO["antagonist"], num_ops=2000)

    print("mean malloc latency (cycles):")
    print(f"{'':>24} {'baseline':>9} {'Mallacc':>9} {'saved':>7}")
    for label, comp in (("cache-friendly (gauss_free)", friendly),
                        ("cache-hostile (antagonist)", hostile)):
        b = mean_cycles(comp.baseline.records)
        a = mean_cycles(comp.mallacc.records)
        print(f"{label:>27} {b:>9.1f} {a:>9.1f} {b - a:>6.1f}")

    print("\nallocator time improvement:")
    print(f"  gauss_free : {friendly.allocator_improvement:.1f}%")
    print(f"  antagonist : {hostile.allocator_improvement:.1f}%")
    print("\nThe antagonist's evictions make the baseline's free-list loads "
          "miss to L2/L3;\nMallacc's in-core copies of head/next dodge those "
          "misses entirely, so its\nabsolute savings are larger under attack "
          "— the Figure 16 'cache isolation' effect.")


if __name__ == "__main__":
    main()

"""Accelerating a search-engine allocation profile (the paper's motivation).

The paper's datacenter case study is xapian, an open-source search engine
serving queries over Wikipedia: small, short-lived allocations drawn from a
handful of size classes, nearly always satisfied on the malloc fast path.
This example builds that scenario with the public workload API, runs it
under baseline TCMalloc and Mallacc, and reports the Figure 13/14/18-style
numbers for it.

Run:  python examples/search_engine_workload.py
"""

from repro import compare_workload
from repro.harness.metrics import classes_for_coverage, median_cycles
from repro.workloads.macro import MacroProfile, macro_workload

# A leaf search node: query terms, posting-list cursors, and result strings.
SEARCH_NODE = MacroProfile(
    name="search-leaf",
    sizes=(
        (24, 0.35),   # query term strings
        (48, 0.30),   # posting cursors
        (64, 0.20),   # document score entries
        (280, 0.10),  # snippet buffers
        (1500, 0.05),  # response assembly
    ),
    free_ratio=1.0,          # every query cleans up after itself
    sized_free_frac=0.9,     # C++ with -fsized-deallocation
    gap_cycles_mean=350,     # scoring work between allocations
    app_lines=12,
    lifetime_ops=20,         # objects live for roughly one query
    description="synthetic search-engine leaf node",
)


def main():
    workload = macro_workload(SEARCH_NODE, default_ops=6000)
    comparison = compare_workload(workload, cache_entries=16)

    base, accel = comparison.baseline, comparison.mallacc
    print(f"workload: {SEARCH_NODE.description}")
    print(f"  size classes covering 90% of calls : {classes_for_coverage(base.records)}")
    print(f"  time spent in the allocator        : {100 * comparison.allocator_fraction:.1f}%")
    print(f"  allocator time under 100 cycles    : {100 * base.fast_path_time_fraction():.0f}%")
    print()
    print("Mallacc results (16-entry malloc cache):")
    print(f"  allocator time improvement : {comparison.allocator_improvement:.1f}%"
          f"  (limit study {comparison.allocator_limit_improvement:.1f}%)")
    print(f"  malloc() time improvement  : {comparison.malloc_improvement:.1f}%")
    print(f"  median malloc latency      : "
          f"{median_cycles(base.records):.0f} -> {median_cycles(accel.records):.0f} cycles")
    print(f"  whole-program speedup      : {comparison.program_speedup:.2f}%")
    print()
    print("paper reference: xapian sees >40% malloc speedup and ~0.2-0.6% "
          "program speedup at a ~5-7% allocator fraction")


if __name__ == "__main__":
    main()

"""Hardware design-space exploration: how many malloc-cache entries?

Section 6.2 of the paper sweeps the cache from 2 to 32 entries and picks 16
as "sufficient for most workloads" by balancing speedup against CAM area.
This example reproduces that engineering decision end-to-end: sweep a
workload, find the speedup inflection, and price each configuration with the
area model.

Run:  python examples/cache_sizing.py
"""

from repro import AreaModel
from repro.harness.sweeps import sweep_cache_sizes
from repro.workloads import MICROBENCHMARKS

SIZES = (2, 4, 8, 16, 32)


def main():
    workload = MICROBENCHMARKS["gauss_free"]
    print(f"sweeping malloc cache sizes on '{workload.name}' "
          f"({workload.description})\n")

    sweep = sweep_cache_sizes(workload, sizes=SIZES, num_ops=1500)

    print(f"{'entries':>8} {'malloc speedup':>15} {'area (um^2)':>12} "
          f"{'% of Haswell core':>18}")
    for entries, speedup in zip(sweep.sizes, sweep.malloc_speedups):
        area = AreaModel.breakdown(entries)
        print(f"{entries:>8} {speedup:>14.1f}% {area.total_um2:>12.0f} "
              f"{100 * area.fraction_of_haswell_core:>17.4f}%")

    print(f"\nlimit study (all three components removed): "
          f"{sweep.limit_speedup:.1f}%")
    inflection = sweep.inflection_size()
    print(f"smallest size reaching half the best speedup: {inflection} entries")
    print("paper's choice: 16 entries — 'sufficient for most workloads', "
          "~1200-1500 um^2, 0.006% of the core")


if __name__ == "__main__":
    main()

"""Quickstart: allocate with TCMalloc, accelerate it with Mallacc.

Runs the same warm malloc/free loop on a stock simulated TCMalloc and on one
equipped with the Mallacc malloc cache, and reports the fast-path latencies —
the paper's headline effect ("malloc latency can be reduced by up to 50%").

Run:  python examples/quickstart.py
"""

from repro import MallaccTCMalloc, TCMalloc


def warm_latency(allocator, size=64, rounds=8, depth=4, pairs=200):
    """Warm the allocator like a long-running process, then measure the
    steady-state malloc/free pair."""
    for _ in range(rounds):
        held = [allocator.malloc(size)[0] for _ in range(depth)]
        for ptr in held:
            allocator.sized_free(ptr, size)
    malloc_cycles = free_cycles = 0
    for _ in range(pairs):
        ptr, malloc_rec = allocator.malloc(size)
        free_rec = allocator.sized_free(ptr, size)
        malloc_cycles += malloc_rec.cycles
        free_cycles += free_rec.cycles
    return malloc_cycles / pairs, free_cycles / pairs


def main():
    baseline = TCMalloc()
    accelerated = MallaccTCMalloc()

    base_malloc, base_free = warm_latency(baseline)
    accel_malloc, accel_free = warm_latency(accelerated)

    print("steady-state fast-path latency (cycles):")
    print(f"  malloc : {base_malloc:5.1f} -> {accel_malloc:5.1f}  "
          f"({100 * (base_malloc - accel_malloc) / base_malloc:.0f}% faster)")
    print(f"  free   : {base_free:5.1f} -> {accel_free:5.1f}  "
          f"({100 * (base_free - accel_free) / base_free:.0f}% faster)")

    cache = accelerated.malloc_cache
    print("\nmalloc cache behaviour:")
    print(f"  size-class lookup hit rate : {cache.sz_hit_rate:.1%}")
    print(f"  free-list pop hit rate     : {cache.pop_hit_rate:.1%}")
    print(f"  prefetches issued          : {cache.stats.prefetches}")

    # The accelerator is invisible to correctness: same pointers, same heap.
    accelerated.malloc_cache.check_invariants(accelerated.machine.memory)
    accelerated.check_conservation()
    print("\nconsistency invariants hold; pointers identical to baseline by design")


if __name__ == "__main__":
    main()

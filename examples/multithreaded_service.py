"""A multithreaded service: request handlers plus a logging consumer.

Models a small datacenter service the way Section 2 motivates multithreaded
allocators: worker threads allocate request/response objects, and a separate
logger thread frees the request records after writing them out — the classic
producer/consumer pattern that naive per-thread pools turn into unbounded
"memory blowup".  Shows contention on the shared central lists, memory
migration keeping the footprint flat, and per-core Mallacc still paying off
under timer preemptions.

Run:  python examples/multithreaded_service.py
"""

import random

from repro.alloc.constants import AllocatorConfig
from repro.alloc.multithread import MultiThreadAllocator

WORKERS = 3
LOGGER = WORKERS  # thread id of the log-flushing consumer
REQUESTS = 1500


def serve(accelerated: bool) -> tuple[int, MultiThreadAllocator]:
    mt = MultiThreadAllocator(
        WORKERS + 1,
        config=AllocatorConfig(release_rate=0),
        accelerated=accelerated,
        switch_quantum_cycles=200_000,
    )
    rng = random.Random(42)
    log_queue: list[tuple[int, int]] = []
    total_cycles = 0
    for _ in range(REQUESTS):
        worker = rng.randrange(WORKERS)
        # Parse buffer + two response strings per request.
        sizes = (256, rng.choice([24, 40, 56]), rng.choice([24, 40, 56]))
        ptrs = []
        for size in sizes:
            ptr, rec = mt.malloc(worker, size)
            total_cycles += rec.cycles
            ptrs.append((ptr, size))
        # Response strings die with the request, on the worker.
        for ptr, size in ptrs[1:]:
            total_cycles += mt.sized_free(worker, ptr, size).cycles
        # The parse buffer goes to the logger, which frees it later.
        log_queue.append(ptrs[0])
        if len(log_queue) > 32:
            ptr, size = log_queue.pop(0)
            total_cycles += mt.sized_free(LOGGER, ptr, size).cycles
    return total_cycles, mt


def main():
    base_cycles, base = serve(accelerated=False)
    accel_cycles, accel = serve(accelerated=True)

    print(f"{REQUESTS} requests, {WORKERS} workers + 1 logger thread\n")
    print(f"allocator cycles: baseline {base_cycles:,} -> Mallacc {accel_cycles:,} "
          f"({100 * (base_cycles - accel_cycles) / base_cycles:.0f}% saved)")
    print(f"central-lock contention: {base.contention_cycles():,} cycles "
          f"across {sum(c.stats.contention_waits for c in base.shared.central_lists)} waits")
    print(f"footprint: {base.reserved_bytes() // 1024} KB reserved for "
          f"{REQUESTS * 256 // 1024} KB of parse buffers churned through the "
          f"logger (memory migrated back via the central lists)")
    print(f"preemptions: {accel.context_switches} "
          f"(each flushed every core's malloc cache)")

    per_thread = ", ".join(
        f"t{t}: {s.mallocs}m/{s.frees}f" for t, s in enumerate(base.stats)
    )
    print(f"per-thread ops: {per_thread}")

    base.check_conservation()
    accel.check_conservation()
    print("\nconservation checks passed on both runs")


if __name__ == "__main__":
    main()
